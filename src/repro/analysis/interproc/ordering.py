"""Determinism analysis: unordered-set iteration flowing into ordered sinks.

The reproduction's central contract is byte-identical parity: the same
query produces the same plan, the same rows in the same order, the same
wire bytes — across runs, interpreter hash seeds, and shard layouts.
``set``/``frozenset`` iteration order is the classic way to break that:
it depends on element hashes, which for strings vary per process unless
``PYTHONHASHSEED`` is pinned.

This analysis flags **escaping iteration** over set-typed values inside
functions whose results can reach a determinism-sensitive *sink* — plan
construction, ring routing, or wire-message assembly:

* sinks are identified by module basename (``costkdecomp``, ``qhd``,
  ``optimizer``, ``plan``, ``hashring``, ``messages``, ``router``, …);
* a function is in scope when it *is* a sink or can reach one through
  the call graph (its outputs may feed plan/wire construction);
* set-typed values are tracked through literals, ``set()`` /
  ``frozenset()`` constructors, set operators and methods, annotations
  (``Set[...]`` on parameters and return types), and function returns;
* only *order-escaping* uses are flagged: ``for x in s``, comprehension
  generators, and ``list`` / ``tuple`` / ``enumerate`` / ``iter`` /
  ``join`` conversions.  ``sorted(s)``, ``min``/``max``/``sum``/``len``,
  membership tests, and set-to-set operations impose or need no order
  and pass clean.

``dict`` iteration is *not* flagged: CPython dicts iterate in insertion
order, which is deterministic whenever insertions are — and the sweep
holding that invariant is exactly what the per-file determinism rules
and the parity tests enforce.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set

from repro.analysis.base import ERROR, Finding
from repro.analysis.interproc.model import (
    FunctionInfo,
    ProgramModel,
    _Resolver,
    resolver_of,
)

RULE_ID = "interproc-determinism"

#: Module basenames whose functions build plans, route queries, or
#: assemble wire messages — the determinism-sensitive sinks.
DEFAULT_SINK_BASENAMES: FrozenSet[str] = frozenset(
    {
        "costkdecomp",
        "detkdecomp",
        "qhd",
        "normalform",
        "hypertree",
        "jointree",
        "treedecomp",
        "views",
        "optimizer",
        "plan",
        "fingerprint",
        "hashring",
        "messages",
        "router",
    }
)

#: Calls whose argument's iteration order escapes into the result.
_ESCAPING_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "join"})

#: Calls that impose an order or are order-insensitive: anything passed
#: directly to them (including comprehensions over sets) is fine.
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
     "Counter"}
)


def sink_functions(
    model: ProgramModel, basenames: FrozenSet[str]
) -> Set[str]:
    return {
        qualname
        for qualname, fn in model.functions.items()
        if fn.module.split(".")[-1] in basenames
    }


def functions_reaching(model: ProgramModel, sinks: Set[str]) -> Set[str]:
    """Functions that are sinks or can reach one through the call graph."""
    reaching = set(sinks)
    changed = True
    while changed:
        changed = False
        for qualname, callees in model.callees.items():
            if qualname in reaching:
                continue
            if callees & reaching:
                reaching.add(qualname)
                changed = True
    return reaching


class DeterminismAnalysis:
    """Flag set-ordered iteration feeding plan/routing/wire construction."""

    rule_id = RULE_ID
    severity = ERROR
    description = (
        "iteration order over set/frozenset values must not flow into "
        "plan construction, ring routing, or wire messages — sort first"
    )

    def __init__(
        self, sink_basenames: FrozenSet[str] = DEFAULT_SINK_BASENAMES
    ) -> None:
        self.sink_basenames = sink_basenames

    def check(self, model: ProgramModel) -> List[Finding]:
        resolver = resolver_of(model)
        sinks = sink_functions(model, self.sink_basenames)
        in_scope = functions_reaching(model, sinks)
        findings: List[Finding] = []
        for qualname in sorted(in_scope):
            fn = model.functions.get(qualname)
            if fn is None:
                continue
            findings.extend(self._check_function(resolver, fn))
        findings.sort(key=Finding.sort_key)
        return findings

    def _check_function(
        self, resolver: _Resolver, fn: FunctionInfo
    ) -> List[Finding]:
        findings: List[Finding] = []
        ordinal = 0
        attr_sets = self._set_attrs(resolver, fn)
        own_nodes = _own_nodes(fn.node)
        # Arguments of order-safe consumers (``min(... for v in s)``,
        # ``sorted(s)``) never leak their iteration order.
        order_safe: Set[int] = set()
        for node in own_nodes:
            if isinstance(node, ast.Call) and _call_name(node) in _ORDER_SAFE_CALLS:
                for arg in node.args:
                    order_safe.add(id(arg))
        for node in own_nodes:
            if id(node) in order_safe:
                continue
            iter_exprs: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                # Only the *first* generator's order escapes into the
                # element order of a list/generator result; a SetComp
                # result is itself unordered and handled at its own use.
                if not isinstance(node, ast.SetComp) and node.generators:
                    iter_exprs.append(node.generators[0].iter)
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _ESCAPING_CALLS and node.args:
                    iter_exprs.append(node.args[0])
            for expr in iter_exprs:
                if not self._is_set_valued(resolver, fn, expr, attr_sets):
                    continue
                ordinal += 1
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        severity=self.severity,
                        path=fn.source.path,
                        line=int(getattr(node, "lineno", fn.line)),
                        column=int(getattr(node, "col_offset", 0)),
                        message=(
                            f"iteration over a set-ordered value in "
                            f"{fn.name}() — its order can flow into plan "
                            f"construction / routing / wire messages; "
                            f"iterate sorted(...) instead"
                        ),
                        key=f"set-order:{fn.qualname}#{ordinal}",
                    )
                )
        return findings

    def _is_set_valued(
        self,
        resolver: _Resolver,
        fn: FunctionInfo,
        expr: ast.expr,
        attr_sets: Set[str],
    ) -> bool:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in attr_sets
        ):
            return True
        return resolver.eval_expr(expr, fn).is_set

    def _set_attrs(self, resolver: _Resolver, fn: FunctionInfo) -> Set[str]:
        """Attributes of ``self`` known to hold sets."""
        if fn.cls is None:
            return set()
        attrs: Set[str] = set()
        for info in resolver.model.mro(fn.cls):
            for attr, value in info.attr_values.items():
                if value.is_set:
                    attrs.add(attr)
        return attrs


def _own_nodes(root: ast.AST) -> List[ast.AST]:
    collected: List[ast.AST] = []
    body = (
        [root.body] if isinstance(root, ast.Lambda) else list(ast.iter_child_nodes(root))
    )
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        collected.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return collected


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


__all__ = [
    "DEFAULT_SINK_BASENAMES",
    "DeterminismAnalysis",
    "RULE_ID",
    "functions_reaching",
    "sink_functions",
]

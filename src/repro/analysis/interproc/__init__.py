"""Interprocedural (whole-program) static analyses.

Where :mod:`repro.analysis.rules` checks one file at a time, this
package builds a call graph over the whole source tree
(:mod:`~repro.analysis.interproc.model`) and runs four program-wide
verifications on top of it:

* :mod:`~repro.analysis.interproc.lockorder` — the static
  may-acquire-after graph over ``make_lock`` names must be acyclic
  (``interproc-lock-order``);
* :mod:`~repro.analysis.interproc.races` — guarded attributes of
  thread-shared classes must be accessed under the class lock, and
  ``*_locked`` helpers called with it held (``interproc-race``);
* :mod:`~repro.analysis.interproc.codec` — every ``ReproError``
  subclass must round-trip through the shard wire codec
  (``interproc-codec``);
* :mod:`~repro.analysis.interproc.ordering` — set iteration order must
  not flow into plans, routing, or wire messages
  (``interproc-determinism``).

Run them via ``hdqo lint --interproc`` or programmatically through
:func:`~repro.analysis.interproc.engine.run_interproc`.
"""

from repro.analysis.interproc.codec import CodecCompletenessAnalysis
from repro.analysis.interproc.engine import (
    BASELINE_FILENAME,
    BaselineEntry,
    InterprocReport,
    all_analyses,
    apply_baseline,
    call_graph_json,
    find_baseline,
    interproc_rule_ids,
    load_baseline,
    run_interproc,
    write_graphs,
)
from repro.analysis.interproc.lockorder import (
    LockGraph,
    LockOrderAnalysis,
    build_lock_graph,
)
from repro.analysis.interproc.model import ProgramModel, build_program
from repro.analysis.interproc.ordering import DeterminismAnalysis
from repro.analysis.interproc.races import SharedStateRaceAnalysis

__all__ = [
    "BASELINE_FILENAME",
    "BaselineEntry",
    "CodecCompletenessAnalysis",
    "DeterminismAnalysis",
    "InterprocReport",
    "LockGraph",
    "LockOrderAnalysis",
    "ProgramModel",
    "SharedStateRaceAnalysis",
    "all_analyses",
    "apply_baseline",
    "build_lock_graph",
    "build_program",
    "call_graph_json",
    "find_baseline",
    "interproc_rule_ids",
    "load_baseline",
    "run_interproc",
    "write_graphs",
]

"""Static lock-order analysis: the may-acquire-after graph and its cycles.

The dynamic witness (:mod:`repro.analysis.lockwitness`) records which
locks were acquired while others were held — but only on exercised
paths.  This analysis derives the same graph *statically*, over every
path the call graph admits:

1. a **may-acquire** fixpoint gives each function the set of lock names
   it (or anything it transitively calls) may acquire;
2. a held-tracking walk over every function then adds an edge
   ``A → B`` whenever ``B`` is acquired — directly by a ``with``, or
   through any resolved call — while ``A`` is held.

A cycle in the resulting graph is a potential deadlock: two code paths
acquire the same locks in opposite orders.  Each cycle is reported once,
with one acquisition site per edge, so both offending paths are named.

Soundness is anchored empirically: the test suite asserts the dynamic
witness's observed graph is a **subgraph** of this one (every runtime
edge must have been predicted).  Calls that could not be resolved while
a lock was held are not silently dropped — they are recorded in the
exported graph under ``unresolved_under_lock`` for inspection.

Reentrant re-acquisition (``A`` while holding ``A``) is not an ordering
edge — the witness skips it too — so self-loops are never reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import ERROR, Finding
from repro.analysis.interproc.model import (
    CallSite,
    ProgramModel,
    iter_held_events,
    resolver_of,
)

RULE_ID = "interproc-lock-order"


@dataclass
class EdgeSite:
    """Where one acquired-after edge was introduced."""

    path: str
    line: int
    function: str
    #: Callee the acquisition happens through, "" for a direct ``with``.
    via: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "via": self.via,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line} in {self.function}"
        return f"{where} (via {self.via})" if self.via else where


@dataclass
class LockGraph:
    """The static may-acquire-after graph, with provenance."""

    #: (held, acquired) → sites introducing the edge.
    edges: Dict[Tuple[str, str], List[EdgeSite]] = field(default_factory=dict)
    #: function qualname → locks it may (transitively) acquire.
    may_acquire: Dict[str, Set[str]] = field(default_factory=dict)
    #: Calls that could not be resolved while a lock was held.
    unresolved_under_lock: List[Dict[str, object]] = field(
        default_factory=list
    )

    def add_edge(self, held: str, acquired: str, site: EdgeSite) -> None:
        if held == acquired:
            return  # reentrancy, not ordering
        sites = self.edges.setdefault((held, acquired), [])
        if len(sites) < 8:  # keep provenance bounded
            sites.append(site)

    def pairs(self) -> Set[Tuple[str, str]]:
        """The edge set (for the witness-subgraph soundness test)."""
        return set(self.edges)

    def successors(self) -> Dict[str, Set[str]]:
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, set()).add(acquired)
        return adjacency

    def lock_names(self) -> List[str]:
        names: Set[str] = set()
        for held, acquired in self.edges:
            names.add(held)
            names.add(acquired)
        for acquired_set in self.may_acquire.values():
            names |= acquired_set
        return sorted(names)

    def to_json(self) -> Dict[str, object]:
        return {
            "locks": self.lock_names(),
            "edges": [
                {
                    "source": held,
                    "target": acquired,
                    "sites": [site.to_dict() for site in sites],
                }
                for (held, acquired), sites in sorted(self.edges.items())
            ],
            "unresolved_under_lock": list(self.unresolved_under_lock),
        }


def compute_may_acquire(model: ProgramModel) -> Dict[str, Set[str]]:
    """Fixpoint: locks each function may acquire, callees included."""
    may: Dict[str, Set[str]] = {
        qualname: set(fn.acquires)
        for qualname, fn in model.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in model.functions:
            mine = may[qualname]
            before = len(mine)
            for callee in model.callees.get(qualname, ()):
                mine |= may.get(callee, set())
            if len(mine) != before:
                changed = True
    return may


def build_lock_graph(model: ProgramModel) -> LockGraph:
    """Derive the may-acquire-after graph over the whole program."""
    resolver = resolver_of(model)
    graph = LockGraph(may_acquire=compute_may_acquire(model))
    for fn in model.functions.values():
        for event in iter_held_events(resolver, fn):
            kind = event[0]
            if kind == "acquire":
                node, acquired, held = event[1], event[2], event[3]
                assert isinstance(acquired, set) and isinstance(held, set)
                line = int(getattr(node, "lineno", fn.line))
                for held_name in held:
                    for acquired_name in acquired:
                        graph.add_edge(
                            held_name,
                            acquired_name,
                            EdgeSite(
                                path=fn.source.path,
                                line=line,
                                function=fn.qualname,
                            ),
                        )
            elif kind == "call":
                site, held = event[1], event[2]
                assert isinstance(site, CallSite) and isinstance(held, set)
                if not held:
                    continue
                line = int(getattr(site.node, "lineno", fn.line))
                for target in site.targets:
                    for acquired_name in graph.may_acquire.get(target, ()):  # noqa: B007
                        for held_name in held:
                            graph.add_edge(
                                held_name,
                                acquired_name,
                                EdgeSite(
                                    path=fn.source.path,
                                    line=line,
                                    function=fn.qualname,
                                    via=target,
                                ),
                            )
                if not site.resolved and site.name:
                    graph.unresolved_under_lock.append(
                        {
                            "function": fn.qualname,
                            "call": site.name,
                            "path": fn.source.path,
                            "line": line,
                            "held": sorted(held),
                        }
                    )
    return graph


def _strongly_connected(adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative (no recursion-depth limits)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []
    nodes = sorted(
        set(adjacency) | {n for succs in adjacency.values() for n in succs}
    )

    for root in nodes:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = sorted(adjacency.get(node, ()))
            advanced = False
            for position in range(child_index, len(successors)):
                succ = successors[position]
                if succ not in index:
                    work.append((node, position + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _cycle_path(
    component: List[str], adjacency: Dict[str, Set[str]]
) -> List[str]:
    """A concrete cycle within one non-trivial SCC (first..first)."""
    members = set(component)
    start = component[0]
    # BFS back to start, restricted to the component.
    queue: List[Tuple[str, List[str]]] = [(start, [start])]
    seen: Set[str] = {start}
    while queue:
        node, path = queue.pop(0)
        for succ in sorted(adjacency.get(node, ()) & members):
            if succ == start and len(path) > 1:
                return path + [start]
            if succ == start and (start in adjacency.get(start, set())):
                return [start, start]
            if succ not in seen:
                seen.add(succ)
                queue.append((succ, path + [succ]))
    # Two-node SCCs always close; fall back defensively.
    return component + [component[0]]


class LockOrderAnalysis:
    """Report lock-order cycles in the static may-acquire-after graph."""

    rule_id = RULE_ID
    severity = ERROR
    description = (
        "static may-acquire-after graph over make_lock names must be "
        "acyclic (a cycle is a potential deadlock)"
    )

    def __init__(self) -> None:
        #: The graph built by the last :meth:`check` (exported by the
        #: engine as the ``lock-graph`` artifact).
        self.graph: Optional[LockGraph] = None

    def check(self, model: ProgramModel) -> List[Finding]:
        graph = build_lock_graph(model)
        self.graph = graph
        adjacency = graph.successors()
        findings: List[Finding] = []
        for component in _strongly_connected(adjacency):
            has_cycle = len(component) > 1
            if not has_cycle:
                continue  # self-loops were never added; singletons are fine
            cycle = _cycle_path(component, adjacency)
            edge_lines: List[str] = []
            anchor: Optional[EdgeSite] = None
            for held, acquired in zip(cycle, cycle[1:]):
                sites = graph.edges.get((held, acquired), [])
                site_text = sites[0].render() if sites else "(unknown site)"
                if anchor is None and sites:
                    anchor = sites[0]
                edge_lines.append(f"{held} -> {acquired} at {site_text}")
            key = "lock-cycle:" + "->".join(_canonical_rotation(cycle[:-1]))
            findings.append(
                Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=anchor.path if anchor else "<program>",
                    line=anchor.line if anchor else 1,
                    column=0,
                    message=(
                        "lock-order cycle (potential deadlock): "
                        + "; ".join(edge_lines)
                    ),
                    key=key,
                )
            )
        findings.sort(key=Finding.sort_key)
        return findings


def _canonical_rotation(cycle: List[str]) -> List[str]:
    """Rotate a cycle so the lexicographically smallest lock leads."""
    if not cycle:
        return cycle
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


__all__ = [
    "EdgeSite",
    "LockGraph",
    "LockOrderAnalysis",
    "RULE_ID",
    "build_lock_graph",
    "compute_may_acquire",
]

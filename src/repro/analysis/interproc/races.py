"""Shared-state race analysis: unguarded access to lock-guarded attributes.

The per-file ``lock-discipline`` rule proves that guarded attributes are
*written* under a lock — within one file, for the directories it scopes.
It cannot see the whole-program half of the story: which instances are
actually *shared* across threads, whether ``*_locked`` helpers really are
called with the lock held, and unguarded *reads* racing guarded writes.

This analysis closes those gaps with the call graph:

* a class is **shared** when any of its methods is reachable from a
  thread/process root (a ``Thread(target=…)``, a pool submission, a
  shard worker) — once one method runs on a worker thread, every method
  of the instance races against it, including ones only the main thread
  calls;
* inside a shared class, any read *or* write of a **guarded** attribute
  (one written under the class's lock somewhere) executed while no class
  lock is held is flagged — the torn-read / lost-update half the
  intraprocedural rule cannot name;
* a call to a ``*_locked`` helper with no class lock held violates the
  helper's documented contract ("caller holds the lock") and is flagged
  at the call site — this is how an unguarded *write* hidden inside a
  helper escapes the per-file rule, and how it gets caught here.

``__init__`` / ``__new__`` / ``__del__`` construct or finalize the
instance before/after it is shared and are exempt, as are the
``*_locked`` helpers themselves (their call sites carry the obligation).
Findings are deduplicated per (class, attribute, method): one report per
unguarded access pattern, anchored at its first occurrence.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.base import ERROR, Finding
from repro.analysis.interproc.model import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ProgramModel,
    _Resolver,
    iter_held_events,
    resolver_of,
)

RULE_ID = "interproc-race"

_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__"})


def shared_classes(model: ProgramModel) -> Set[str]:
    """Classes with a method reachable from a thread/process root."""
    reachable = model.reachable_from(model.thread_roots)
    shared: Set[str] = set()
    for qualname in reachable:
        fn = model.functions.get(qualname)
        if fn is not None and fn.cls is not None:
            shared.add(fn.cls)
    return shared


class SharedStateRaceAnalysis:
    """Flag unguarded guarded-attribute access in thread-shared classes."""

    rule_id = RULE_ID
    severity = ERROR
    description = (
        "guarded attributes of thread-shared classes must be accessed "
        "under the class lock; *_locked helpers must be called with it held"
    )

    def check(self, model: ProgramModel) -> List[Finding]:
        resolver = resolver_of(model)
        shared = shared_classes(model)
        findings: List[Finding] = []
        seen: Set[Tuple[str, str, str]] = set()
        for cls_qualname in sorted(shared):
            info = model.classes.get(cls_qualname)
            if info is None:
                continue
            lock_names = self._class_locks(model, info)
            guarded = self._guarded_attrs(model, info)
            if not lock_names:
                continue
            for method_name, method_qualname in sorted(info.methods.items()):
                fn = model.functions.get(method_qualname)
                if fn is None:
                    continue
                if method_name in _EXEMPT_METHODS:
                    continue
                if method_name.endswith("_locked"):
                    continue  # contract checked at call sites below
                findings.extend(
                    self._check_method(
                        resolver, info, fn, method_name,
                        lock_names, guarded, seen,
                    )
                )
        findings.sort(key=Finding.sort_key)
        return findings

    # -- per-class facts ------------------------------------------------

    def _class_locks(self, model: ProgramModel, info: ClassInfo) -> Set[str]:
        names: Set[str] = set()
        for ancestor in model.mro(info.qualname):
            names |= set(ancestor.attr_locks.values())
        return names

    def _guarded_attrs(self, model: ProgramModel, info: ClassInfo) -> Set[str]:
        guarded: Set[str] = set()
        for ancestor in model.mro(info.qualname):
            guarded |= ancestor.guarded
        return guarded

    # -- per-method walk ------------------------------------------------

    def _check_method(
        self,
        resolver: _Resolver,
        info: ClassInfo,
        fn: FunctionInfo,
        method_name: str,
        lock_names: Set[str],
        guarded: Set[str],
        seen: Set[Tuple[str, str, str]],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for event in iter_held_events(resolver, fn):
            kind = event[0]
            if kind == "access":
                node, attr, is_write, held = (
                    event[1], event[2], event[3], event[4],
                )
                assert isinstance(attr, str) and isinstance(held, set)
                if attr not in guarded or attr in info.attr_locks:
                    continue
                if held & lock_names:
                    continue
                dedupe = (info.qualname, attr, method_name)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                verb = "written" if is_write else "read"
                lock_list = " / ".join(sorted(lock_names))
                findings.append(
                    self._finding(
                        fn,
                        node,
                        key=f"race:{info.name}.{attr}:{method_name}",
                        message=(
                            f"{info.name}.{attr} {verb} without holding "
                            f"{lock_list} in {method_name}(); the instance "
                            f"is shared with worker threads and the "
                            f"attribute is lock-guarded elsewhere"
                        ),
                    )
                )
            elif kind == "call":
                site, held = event[1], event[2]
                assert isinstance(site, CallSite) and isinstance(held, set)
                callee_name = site.name
                if not callee_name.endswith("_locked"):
                    continue
                if not _is_self_call(site):
                    continue
                if held & lock_names:
                    continue
                dedupe = (info.qualname, f"{callee_name}()", method_name)
                if dedupe in seen:
                    continue
                seen.add(dedupe)
                findings.append(
                    self._finding(
                        fn,
                        site.node,
                        key=f"locked-call:{info.name}.{callee_name}:{method_name}",
                        message=(
                            f"{info.name}.{callee_name}() called from "
                            f"{method_name}() without holding "
                            f"{' / '.join(sorted(lock_names))}; *_locked "
                            f"helpers require the caller to hold the lock"
                        ),
                    )
                )
        return findings

    def _finding(
        self, fn: FunctionInfo, node: object, key: str, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=fn.source.path,
            line=int(getattr(node, "lineno", fn.line)),
            column=int(getattr(node, "col_offset", 0)),
            message=message,
            key=key,
        )


def _is_self_call(site: CallSite) -> bool:
    func = site.node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


__all__ = ["RULE_ID", "SharedStateRaceAnalysis", "shared_classes"]

"""Whole-program model: modules, classes, functions, and the call graph.

The per-file rules in :mod:`repro.analysis.rules` see one AST at a time;
the interprocedural analyses need the *program*: which function calls
which, which attribute holds an instance of which class, which locks a
callee may acquire, which functions run on worker threads.  This module
builds that model from the same parsed :class:`~repro.analysis.base.
FileSource` objects the per-file driver uses (one parse per file, shared
through :class:`~repro.analysis.driver.SourceCache`).

Resolution is heuristic but sound *in the direction the analyses need*:

* **names** resolve through module-level defs and imports (absolute and
  relative);
* **``self.m()``** resolves through the enclosing class and its in-program
  bases (a method lookup over the static MRO);
* **``self.x.m()`` / ``v.m()``** resolve through *tracked value flow*:
  ``self.x = ClassName(...)`` and ``v = ClassName(...)`` record the
  instance type, so the method lookup has a receiver class;
* **callbacks** resolve one call-site deep: a function reference passed
  as an argument binds to the receiving parameter, so a callee invoking
  ``param(...)`` gains edges to every function its callers pass in (the
  plan cache's single-flight builder, the executor pool's submitted
  tasks); a parameter stored into ``self.x`` flows into the attribute;
* **thread/process roots** are functions passed as ``Thread(target=…)``
  / ``Process(target=…)`` or submitted to a pool (``submit`` /
  ``submit_blocking`` / ``submit_node``) — the entry points from which
  shared-state reachability starts.

What deliberately does *not* resolve — calls through data structures,
``getattr``, re-exported aliases — is recorded as an unresolved call so
the lock-order analysis can report (not silently ignore) indirect calls
made while a lock is held.  The dynamic witness-subgraph test in the
suite keeps the model honest: every acquired-after edge the runtime
witness observes must be present in the static graph.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.base import FileSource, attr_chain
from repro.analysis.driver import SourceCache, iter_python_files

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Callables recognised as lock factories (the witness factory and the
#: stdlib constructors it wraps).
_LOCK_FACTORIES = frozenset({"make_lock", "checked_lock"})
_RAW_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_CONDITION_FACTORIES = frozenset({"Condition"})

#: Pool-submission method names whose first callable argument runs on a
#: worker thread.
_SUBMIT_METHODS = frozenset({"submit", "submit_blocking", "submit_node"})

#: set-typed builtin constructors / method names (for the determinism
#: analysis's value tracking).
_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


@dataclass
class ValueSet:
    """What an expression may evaluate to, as far as the model can tell."""

    classes: Set[str] = field(default_factory=set)  # instance-of these
    funcs: Set[str] = field(default_factory=set)  # these functions
    locks: Set[str] = field(default_factory=set)  # a lock with these names
    is_set: bool = False  # a set/frozenset value

    def merge(self, other: "ValueSet") -> None:
        self.classes |= other.classes
        self.funcs |= other.funcs
        self.locks |= other.locks
        self.is_set = self.is_set or other.is_set

    def empty(self) -> bool:
        return not (self.classes or self.funcs or self.locks or self.is_set)


@dataclass
class CallSite:
    """One call expression inside a function, with resolved targets."""

    caller: str
    node: ast.Call
    targets: Set[str] = field(default_factory=set)
    #: Diagnostic name for unresolved calls (``.snapshot`` → "snapshot").
    name: str = ""
    resolved: bool = False


@dataclass
class FunctionInfo:
    """One function / method / lambda in the program."""

    qualname: str
    module: str
    name: str
    node: FunctionNode
    source: FileSource
    cls: Optional[str] = None  # enclosing class qualname
    parent: Optional[str] = None  # enclosing function qualname
    params: List[str] = field(default_factory=list)
    #: Local name → tracked value (assignments scanned flow-insensitively).
    env: Dict[str, ValueSet] = field(default_factory=dict)
    #: Values this function may return.
    returns: ValueSet = field(default_factory=ValueSet)
    #: Lock names acquired directly (``with`` items) in this body.
    acquires: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass
class ClassInfo:
    """One class: methods, base classes, and tracked attribute values."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    source: FileSource
    bases: List[str] = field(default_factory=list)  # qualnames or raw names
    methods: Dict[str, str] = field(default_factory=dict)  # name → qualname
    attr_locks: Dict[str, str] = field(default_factory=dict)  # attr → lock
    attr_values: Dict[str, ValueSet] = field(default_factory=dict)
    #: Attributes written under one of the class's locks somewhere.
    guarded: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One module: its parsed source, imports, and top-level bindings."""

    name: str
    path: str
    source: FileSource
    is_package: bool = False  # an ``__init__.py``
    imports: Dict[str, str] = field(default_factory=dict)  # local → qualified
    env: Dict[str, ValueSet] = field(default_factory=dict)  # module globals


class ProgramModel:
    """The resolved whole-program view the analyses consume."""

    def __init__(self) -> None:
        #: The resolver that built this model (set by :func:`build_program`).
        self.resolver: Optional["_Resolver"] = None
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qualname → callee qualnames (the call graph).
        self.callees: Dict[str, Set[str]] = {}
        #: Functions that run on worker threads / processes.
        self.thread_roots: Set[str] = set()
        #: (callee qualname, param name) → values bound at call sites
        #: (functions, class instances, locks — closures see them all).
        self.param_funcs: Dict[Tuple[str, str], ValueSet] = {}
        #: method name → qualnames (diagnostics).
        self.methods_by_name: Dict[str, Set[str]] = {}
        #: Files that failed to parse (path → error text).
        self.unparsed: Dict[str, str] = {}

    # -- lookups --------------------------------------------------------

    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def mro(self, cls: str) -> List[ClassInfo]:
        """The class and its in-program ancestors, nearest first."""
        ordered: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            name = queue.pop(0)
            info = self.classes.get(name)
            if info is None or info.qualname in seen:
                continue
            seen.add(info.qualname)
            ordered.append(info)
            queue.extend(info.bases)
        return ordered

    def lookup_method(self, cls: str, method: str) -> Optional[str]:
        """Resolve ``method`` over ``cls`` and its in-program bases."""
        for info in self.mro(cls):
            qualname = info.methods.get(method)
            if qualname is not None:
                return qualname
        return None

    def subclasses_of(self, root_name: str) -> List[ClassInfo]:
        """Program classes deriving (transitively) from ``root_name``.

        ``root_name`` is a *bare* class name (``ReproError``): base-class
        references that could not be resolved to a program qualname are
        matched by terminal name, so a fixture package's own hierarchy
        resolves the same way the real one does.
        """
        roots = {
            info.qualname
            for info in self.classes.values()
            if info.name == root_name
        }
        out: List[ClassInfo] = []
        for info in self.classes.values():
            if info.qualname in roots:
                continue
            for ancestor in self.mro(info.qualname):
                if ancestor.qualname in roots:
                    out.append(info)
                    break
            else:
                # Unresolved base chains: match on raw base names too.
                if any(base.split(".")[-1] == root_name for base in info.bases):
                    out.append(info)
        return out

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Call-graph closure of ``roots``."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            queue.extend(self.callees.get(name, ()))
        return seen


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def _module_name(path: str, root: str) -> str:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(part for part in parts if part)


def _package_root(path: str) -> str:
    """The directory module names are relative to.

    Walks up while ``__init__.py`` marks package directories, so linting
    ``src/repro`` names modules ``repro.…`` and a fixture package in a
    tmp directory names them after its own top-level package.
    """
    current = os.path.abspath(path)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while os.path.exists(os.path.join(current, "__init__.py")):
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return current


class _ModuleIndexer(ast.NodeVisitor):
    """First pass over one module: declare classes and functions."""

    def __init__(self, model: ProgramModel, module: ModuleInfo) -> None:
        self.model = model
        self.module = module
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[FunctionInfo] = []

    # -- scope bookkeeping ---------------------------------------------

    def _qualify(self, name: str) -> str:
        if self._func_stack:
            return f"{self._func_stack[-1].qualname}.{name}"
        if self._class_stack:
            return f"{self._class_stack[-1].qualname}.{name}"
        return f"{self.module.name}.{name}"

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.module.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: resolve against this module's package.
            package = self.module.name.split(".")
            # level 1 = the containing package: a plain module drops its
            # own name; an ``__init__`` *is* the package already.
            drop = node.level - 1 if self.module.is_package else node.level
            if drop:
                package = package[: len(package) - drop]
            base = ".".join(package + ([node.module] if node.module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # -- declarations ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualify(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            node=node,
            source=self.module.source,
        )
        for base in node.bases:
            chain = attr_chain(base)
            if chain is None:
                continue
            info.bases.append(self._resolve_dotted(chain))
        self.model.classes[qualname] = info
        if not self._func_stack and not self._class_stack:
            self.module.env.setdefault(node.name, ValueSet()).classes.add(
                qualname
            )
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def _resolve_dotted(self, chain: List[str]) -> str:
        head = chain[0]
        if head in self.module.imports:
            return ".".join([self.module.imports[head]] + chain[1:])
        local = f"{self.module.name}.{'.'.join(chain)}"
        return local

    def _declare_function(self, node: FunctionNode, name: str) -> None:
        qualname = self._qualify(name)
        cls = (
            self._class_stack[-1].qualname
            if self._class_stack and not self._func_stack
            else (self._func_stack[-1].cls if self._func_stack else None)
        )
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=name,
            node=node,
            source=self.module.source,
            cls=cls,
            parent=self._func_stack[-1].qualname if self._func_stack else None,
            params=[arg.arg for arg in node.args.args],
        )
        self.model.functions[qualname] = info
        self.model.methods_by_name.setdefault(name, set()).add(qualname)
        if self._class_stack and not self._func_stack:
            self._class_stack[-1].methods[name] = qualname
        self._func_stack.append(info)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._declare_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._declare_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._declare_function(node, f"<lambda@{node.lineno}>")


def _own_statements(node: FunctionNode) -> Iterator[ast.AST]:
    """Nodes of a function's own body, nested defs/classes excluded."""
    body: Sequence[ast.AST]
    if isinstance(node, ast.Lambda):
        body = [node.body]
    else:
        body = node.body
    stack: List[ast.AST] = list(body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


class _Resolver:
    """Second pass: value flow, call-graph edges, roots (iterated)."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model

    # -- expression evaluation -----------------------------------------

    def eval_expr(self, expr: ast.expr, fn: FunctionInfo) -> ValueSet:
        out = ValueSet()
        if isinstance(expr, ast.Name):
            self._eval_name(expr.id, fn, out)
        elif isinstance(expr, ast.Attribute):
            self._eval_attribute(expr, fn, out)
        elif isinstance(expr, ast.Lambda):
            qual = f"{fn.qualname}.<lambda@{expr.lineno}>"
            if qual in self.model.functions:
                out.funcs.add(qual)
        elif isinstance(expr, (ast.Set, ast.SetComp)):
            out.is_set = True
        elif isinstance(expr, ast.Call):
            self._eval_call(expr, fn, out)
        elif isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self.eval_expr(expr.left, fn)
            right = self.eval_expr(expr.right, fn)
            out.is_set = left.is_set or right.is_set
        elif isinstance(expr, ast.IfExp):
            out.merge(self.eval_expr(expr.body, fn))
            out.merge(self.eval_expr(expr.orelse, fn))
        return out

    def _eval_name(self, name: str, fn: FunctionInfo, out: ValueSet) -> None:
        # Walk the lexical chain: locals, enclosing functions, module.
        current: Optional[FunctionInfo] = fn
        while current is not None:
            bound = current.env.get(name)
            if bound is not None:
                out.merge(bound)
                return
            bound_param = self.model.param_funcs.get((current.qualname, name))
            if bound_param is not None and name in current.params:
                out.merge(bound_param)
                return
            # Sibling / enclosing nested defs and classes bind their name
            # in the frame that declares them.
            candidate = f"{current.qualname}.{name}"
            if candidate in self.model.functions:
                out.funcs.add(candidate)
                return
            if candidate in self.model.classes:
                out.classes.add(candidate)
                return
            if name in current.params:
                return  # an untracked parameter shadows outer scopes
            current = (
                self.model.functions.get(current.parent)
                if current.parent
                else None
            )
        module = self.model.modules.get(fn.module)
        if module is None:
            return
        bound = module.env.get(name)
        if bound is not None:
            out.merge(bound)
            return
        target = module.imports.get(name)
        if target is not None:
            self._merge_qualified(target, out)

    def _merge_qualified(self, qualname: str, out: ValueSet) -> None:
        if qualname in self.model.classes:
            out.classes.add(qualname)  # a class object; calls construct it
        elif qualname in self.model.functions:
            out.funcs.add(qualname)
        else:
            module = self.model.modules.get(
                ".".join(qualname.split(".")[:-1])
            )
            if module is not None:
                bound = module.env.get(qualname.split(".")[-1])
                if bound is not None:
                    out.merge(bound)

    def _eval_attribute(
        self, expr: ast.Attribute, fn: FunctionInfo, out: ValueSet
    ) -> None:
        chain = attr_chain(expr)
        if (
            chain is not None
            and chain[0] == "self"
            and fn.cls is not None
            and len(chain) == 2
        ):
            self._merge_instance_attr(fn.cls, chain[1], out)
            return
        # Typed receiver (a parameter, local, or closure binding holding a
        # known class instance): same attribute lookup as ``self``.
        receiver = self.eval_expr(expr.value, fn)
        for cls in receiver.classes:
            self._merge_instance_attr(cls, expr.attr, out)
        if not out.empty():
            return
        # Module attribute (``mod.func`` / ``pkg.mod.Class``).
        if chain is None:
            return
        module = self.model.modules.get(fn.module)
        if module is None:
            return
        head = chain[0]
        target = module.imports.get(head)
        if target is not None:
            self._merge_qualified(".".join([target] + chain[1:]), out)

    def _merge_instance_attr(self, cls: str, attr: str, out: ValueSet) -> None:
        for info in self.model.mro(cls):
            if attr in info.attr_locks:
                out.locks.add(info.attr_locks[attr])
            bound = info.attr_values.get(attr)
            if bound is not None:
                out.merge(bound)
            method = info.methods.get(attr)
            if method is not None:
                out.funcs.add(method)

    def _eval_call(
        self, call: ast.Call, fn: FunctionInfo, out: ValueSet
    ) -> None:
        func = call.func
        name = _terminal_name(func)
        if name in _LOCK_FACTORIES:
            lock_name = _literal_str_arg(call)
            if lock_name is not None:
                out.locks.add(lock_name)
            return
        if name in _RAW_LOCK_FACTORIES:
            out.locks.add(f"<{fn.module}:{call.lineno}:{name}>")
            return
        if name in _CONDITION_FACTORIES:
            # Condition(lock) aliases the wrapped lock; a bare Condition()
            # wraps a private RLock (its own role).
            if call.args:
                out.merge(self.eval_expr(call.args[0], fn))
            else:
                out.locks.add(f"<{fn.module}:{call.lineno}:Condition>")
            return
        if name in _SET_CALLS:
            out.is_set = True
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and self.eval_expr(func.value, fn).is_set
        ):
            out.is_set = True
            return
        callee = self.eval_expr(func, fn)
        for cls in callee.classes:
            out.classes.add(cls)  # constructor call → instance
        for target in callee.funcs:
            target_fn = self.model.functions.get(target)
            if target_fn is not None:
                out.merge(target_fn.returns)

    # -- per-function resolution ---------------------------------------

    def scan_function(self, fn: FunctionInfo) -> None:
        """(Re)build one function's env, returns, and call sites."""
        fn.env = {}
        fn.returns = ValueSet()
        fn.calls = []
        fn.acquires = set()
        # Assignments first (flow-insensitive), so later calls resolve
        # through locals regardless of statement order.
        for node in _own_statements(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if value is not None:
                    evaluated = self.eval_expr(value, fn)
                    for target in targets:
                        if isinstance(target, ast.Name):
                            slot = fn.env.setdefault(target.id, ValueSet())
                            slot.merge(evaluated)
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _is_set_annotation(node.annotation):
                        fn.env.setdefault(
                            node.target.id, ValueSet()
                        ).is_set = True
        for arg in _annotated_args(fn.node):
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                fn.env.setdefault(arg.arg, ValueSet()).is_set = True
        for node in _own_statements(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                fn.returns.merge(self.eval_expr(node.value, fn))
            elif isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                for item in node.items:
                    fn.acquires |= self.lock_names_of(item.context_expr, fn)
            elif isinstance(node, ast.Call):
                self._resolve_call(node, fn)
        if isinstance(fn.node, ast.Lambda):
            fn.returns.merge(self.eval_expr(fn.node.body, fn))
        elif fn.node.returns is not None and _is_set_annotation(fn.node.returns):
            fn.returns.is_set = True

    def lock_names_of(self, expr: ast.expr, fn: FunctionInfo) -> Set[str]:
        """Lock names an expression used as a ``with`` item may denote."""
        value = self.eval_expr(expr, fn)
        if value.locks:
            return set(value.locks)
        if isinstance(expr, ast.Call):
            callee = self.eval_expr(expr.func, fn)
            locks: Set[str] = set()
            for target in callee.funcs:
                target_fn = self.model.functions.get(target)
                if target_fn is not None:
                    locks |= target_fn.returns.locks
            return locks
        return set()

    def _resolve_call(self, call: ast.Call, fn: FunctionInfo) -> None:
        func = call.func
        site = CallSite(caller=fn.qualname, node=call, name=_terminal_name(func) or "")
        # ``super().m()``.
        is_super = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Call)
            and _terminal_name(func.value.func) == "super"
            and fn.cls is not None
        )
        if is_super and isinstance(func, ast.Attribute) and fn.cls is not None:
            cls_info = self.model.classes.get(fn.cls)
            for base in cls_info.bases if cls_info is not None else []:
                method = self.model.lookup_method(base, func.attr)
                if method is not None:
                    site.targets.add(method)
        else:
            callee = self.eval_expr(func, fn)
            site.targets |= {
                target for target in callee.funcs
                if target in self.model.functions
            }
            for cls in callee.classes:
                init = self.model.lookup_method(cls, "__init__")
                if init is not None:
                    site.targets.add(init)
            if (
                not site.targets
                and isinstance(func, ast.Attribute)
            ):
                receiver = self.eval_expr(func.value, fn)
                for cls in receiver.classes:
                    method = self.model.lookup_method(cls, func.attr)
                    if method is not None:
                        site.targets.add(method)
        site.resolved = bool(site.targets)
        fn.calls.append(site)
        self._bind_arguments(call, site, fn)

    def _bind_arguments(
        self, call: ast.Call, site: CallSite, fn: FunctionInfo
    ) -> None:
        """Bind argument values (functions, instances) to parameters."""
        arg_values: List[Tuple[Optional[str], ValueSet]] = []
        for arg in call.args:
            arg_values.append((None, self.eval_expr(arg, fn)))
        for keyword in call.keywords:
            arg_values.append((keyword.arg, self.eval_expr(keyword.value, fn)))
        callee_name = _terminal_name(call.func)
        # Thread / process construction: the target runs concurrently.
        if callee_name in {"Thread", "Process"}:
            for key, value in arg_values:
                if key == "target":
                    self.model.thread_roots |= value.funcs
        # Pool submission: the callable runs on a worker thread.
        if callee_name in _SUBMIT_METHODS:
            for key, value in arg_values:
                if key is None and value.funcs:
                    self.model.thread_roots |= value.funcs
                    break
        # Generic parameter binding, one call-site deep.
        for target in site.targets:
            target_fn = self.model.functions.get(target)
            if target_fn is None:
                continue
            params = target_fn.params
            offset = 1 if params[:1] == ["self"] else 0
            position = 0
            for key, value in arg_values:
                if value.empty():
                    if key is None:
                        position += 1
                    continue
                if key is None:
                    index = position + offset
                    position += 1
                    if index >= len(params):
                        continue
                    param = params[index]
                else:
                    if key not in params:
                        continue
                    param = key
                self.model.param_funcs.setdefault(
                    (target, param), ValueSet()
                ).merge(value)

    # -- class summaries -----------------------------------------------

    def summarize_class(self, info: ClassInfo) -> None:
        info.attr_locks = {}
        info.attr_values = {}
        info.guarded = set()
        methods = [
            self.model.functions[qual]
            for qual in info.methods.values()
            if qual in self.model.functions
        ]
        # Two rounds so ``Condition(self._lock)`` aliases resolve after
        # ``self._lock = make_lock(…)`` has been recorded.
        for _ in range(2):
            for fn in methods:
                for node in _own_statements(fn.node):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    value = node.value
                    if value is None:
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        chain = attr_chain(target)
                        if (
                            chain is None
                            or len(chain) != 2
                            or chain[0] != "self"
                        ):
                            continue
                        attr = chain[1]
                        evaluated = self.eval_expr(value, fn)
                        if evaluated.locks:
                            # One name per lock attribute: first wins
                            # (re-assignment keeps the role).
                            info.attr_locks.setdefault(
                                attr, sorted(evaluated.locks)[0]
                            )
                        if not evaluated.empty():
                            info.attr_values.setdefault(
                                attr, ValueSet()
                            ).merge(evaluated)
        # Param-valued attributes (``self.x = handler``): the call-site
        # bindings of the parameter flow into the attribute.
        for fn in methods:
            for node in _own_statements(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue
                param = node.value.id
                if param not in fn.params:
                    continue
                bound = self.model.param_funcs.get((fn.qualname, param))
                if bound is None or bound.empty():
                    continue
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        info.attr_values.setdefault(
                            chain[1], ValueSet()
                        ).merge(bound)

    def summarize_guarded(self, info: ClassInfo) -> None:
        """Attributes written while one of the class's locks is held."""
        lock_names = set(info.attr_locks.values())
        if not lock_names:
            return
        for qual in info.methods.values():
            fn = self.model.functions.get(qual)
            if fn is None:
                continue
            for _node, attr, held in iter_self_writes(self, fn):
                if attr in info.attr_locks:
                    continue
                if held & lock_names:
                    info.guarded.add(attr)

    # -- module env -----------------------------------------------------

    def scan_module_env(self, module: ModuleInfo) -> None:
        holder = FunctionInfo(
            qualname=module.name,
            module=module.name,
            name="<module>",
            node=_EMPTY_FN,
            source=module.source,
        )
        for node in module.source.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                evaluated = self.eval_expr(value, holder)
                for target in targets:
                    if isinstance(target, ast.Name):
                        module.env.setdefault(
                            target.id, ValueSet()
                        ).merge(evaluated)


_EMPTY_FN = ast.Lambda(
    args=ast.arguments(
        posonlyargs=[], args=[], vararg=None, kwonlyargs=[],
        kw_defaults=[], kwarg=None, defaults=[],
    ),
    body=ast.Constant(value=None),
)


def iter_self_writes(
    resolver: _Resolver, fn: FunctionInfo
) -> Iterator[Tuple[ast.AST, str, Set[str]]]:
    """``(node, attr, held-locks)`` for every ``self.<attr>`` write in
    ``fn``'s own body (container mutations count; nested defs excluded)."""

    def walk(node: ast.AST, held: Set[str]) -> Iterator[
        Tuple[ast.AST, str, Set[str]]
    ]:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                acquired |= resolver.lock_names_of(item.context_expr, fn)
            inner = held | acquired
            for child in ast.iter_child_nodes(node):
                yield from walk(child, inner)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: List[ast.expr] = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            queue = list(targets)
            while queue:
                target = queue.pop()
                if isinstance(target, (ast.Tuple, ast.List)):
                    queue.extend(target.elts)
                    continue
                while isinstance(target, ast.Subscript):
                    target = target.value
                chain = attr_chain(target)
                if chain and len(chain) >= 2 and chain[0] == "self":
                    yield target, chain[1], set(held)
        for child in ast.iter_child_nodes(node):
            yield from walk(child, held)

    body: Sequence[ast.AST] = (
        [fn.node.body] if isinstance(fn.node, ast.Lambda) else fn.node.body
    )
    for stmt in body:
        yield from walk(stmt, set())


#: One event from :func:`iter_held_events`:
#: ``("acquire", node, acquired-locks, held-before)`` for a ``with`` item,
#: ``("call", CallSite, held)`` for every call expression, and
#: ``("access", node, attr, is_write, held)`` for every ``self.<attr>``.
HeldEvent = Tuple[str, object, object, object, object]


def iter_held_events(
    resolver: _Resolver, fn: FunctionInfo
) -> Iterator[Tuple[str, object, object, object, object]]:
    """Walk ``fn``'s own body tracking which locks are held where.

    The single traversal both lock-order and race analysis consume:
    ``with`` items are evaluated progressively (item *n+1* sees item *n*'s
    locks as held, matching runtime order), nested function bodies are
    excluded (they acquire on their own behalf, connected via the call
    graph), and every call / ``self.<attr>`` access is reported together
    with the set of lock names held at that point.
    """
    sites = {id(site.node): site for site in fn.calls}

    def walk(
        node: ast.AST, held: Set[str]
    ) -> Iterator[Tuple[str, object, object, object, object]]:
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            current = set(held)
            for item in node.items:
                yield from walk(item.context_expr, current)
                acquired = resolver.lock_names_of(item.context_expr, fn)
                yield ("acquire", item.context_expr, acquired, set(current), None)
                current |= acquired
            for stmt in node.body:
                yield from walk(stmt, current)
            return
        if isinstance(node, ast.Call):
            site = sites.get(id(node))
            if site is not None:
                yield ("call", site, set(held), None, None)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                is_write = isinstance(node.ctx, (ast.Store, ast.Del))
                yield ("access", node, node.attr, is_write, set(held))
        for child in ast.iter_child_nodes(node):
            yield from walk(child, held)

    body: Sequence[ast.AST] = (
        [fn.node.body] if isinstance(fn.node, ast.Lambda) else fn.node.body
    )
    for stmt in body:
        yield from walk(stmt, set())


def _terminal_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _literal_str_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def _is_set_annotation(annotation: ast.expr) -> bool:
    base: ast.expr = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    name = _terminal_name(base)
    return name in _SET_ANNOTATIONS


def _annotated_args(node: FunctionNode) -> List[ast.arg]:
    args = list(node.args.args)
    args.extend(node.args.kwonlyargs)
    args.extend(node.args.posonlyargs)
    return args


def build_program(
    paths: Sequence[str],
    cache: Optional[SourceCache] = None,
) -> ProgramModel:
    """Parse ``paths`` (sharing ``cache``) and resolve the program model.

    Files that fail to parse are recorded in :attr:`ProgramModel.unparsed`
    and skipped — the per-file driver reports them as ``syntax-error``.
    """
    cache = cache if cache is not None else SourceCache()
    model = ProgramModel()
    for path in iter_python_files(paths):
        try:
            source = cache.load(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            model.unparsed[path] = str(exc)
            continue
        name = _module_name(path, _package_root(path))
        if not name:
            continue
        module = ModuleInfo(
            name=name,
            path=source.posix_path,
            source=source,
            is_package=os.path.basename(path) == "__init__.py",
        )
        model.modules[name] = module
        _ModuleIndexer(model, module).visit(source.tree)

    resolver = _Resolver(model)
    for module in model.modules.values():
        resolver.scan_module_env(module)
    # Iterate resolution to a (practical) fixpoint: class summaries feed
    # call resolution, call-site bindings feed parameter/attribute flow,
    # which feeds the next round.  Three rounds close every chain the
    # repo exhibits (callback → attribute → call); the loop exits early
    # when the call graph stops changing.
    previous_edges = -1
    for _ in range(4):
        for info in model.classes.values():
            resolver.summarize_class(info)
        for fn in model.functions.values():
            resolver.scan_function(fn)
        model.callees = {
            fn.qualname: {
                target for site in fn.calls for target in site.targets
            }
            for fn in model.functions.values()
        }
        edge_count = sum(len(v) for v in model.callees.values())
        if edge_count == previous_edges:
            break
        previous_edges = edge_count
    for info in model.classes.values():
        resolver.summarize_guarded(info)
    model.resolver = resolver
    return model


def resolver_of(model: ProgramModel) -> "_Resolver":
    """The resolver used to build ``model`` (for the analyses)."""
    if model.resolver is None:
        model.resolver = _Resolver(model)
    return model.resolver


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramModel",
    "ValueSet",
    "build_program",
    "iter_held_events",
    "iter_self_writes",
    "resolver_of",
]

"""The interprocedural engine: run analyses, apply suppressions/baseline.

One entry point, :func:`run_interproc`, does the whole-program half of a
lint invocation: build the :class:`~repro.analysis.interproc.model.
ProgramModel` (sharing the driver's parse-once :class:`~repro.analysis.
driver.SourceCache`), run the selected analyses, then filter findings
through two mechanisms:

* **inline suppressions** — the same ``# hdqo: ignore[rule-id]``
  comments the per-file rules honour, resolved against the finding's
  source line;
* **the baseline file** — a committed JSON file of *accepted* findings,
  matched by ``(rule, key)`` (stable identities, not line numbers), each
  carrying a one-line justification.  Baselined findings don't fail the
  run; stale baseline entries (matching nothing) are themselves reported
  as warnings so the file cannot rot silently.

The engine also exports the two graph artifacts CI uploads: the call
graph and the static lock-order graph, both as plain JSON.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import WARNING, Finding
from repro.analysis.driver import SourceCache
from repro.analysis.interproc.codec import CodecCompletenessAnalysis
from repro.analysis.interproc.lockorder import LockGraph, LockOrderAnalysis
from repro.analysis.interproc.model import ProgramModel, build_program
from repro.analysis.interproc.ordering import DeterminismAnalysis
from repro.analysis.interproc.races import SharedStateRaceAnalysis

#: The default baseline filename, discovered by walking up from the
#: analyzed paths (so ``hdqo lint src/repro`` finds the repo's file).
BASELINE_FILENAME = "lint-baseline.json"

_BASELINE_RULE = "interproc-baseline"


def all_analyses() -> List[object]:
    """Fresh instances of the four interprocedural analyses."""
    return [
        LockOrderAnalysis(),
        SharedStateRaceAnalysis(),
        CodecCompletenessAnalysis(),
        DeterminismAnalysis(),
    ]


def interproc_rule_ids() -> List[str]:
    return [str(getattr(a, "rule_id")) for a in all_analyses()]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: matched by identity, explained by a human."""

    rule: str
    key: str
    justification: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "key": self.key,
            "justification": self.justification,
        }


def load_baseline(path: str) -> List[BaselineEntry]:
    """Parse a baseline file; raises ``ValueError`` on a malformed one."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: baseline must be an object with 'entries'")
    entries: List[BaselineEntry] = []
    raw_entries = payload["entries"]
    if not isinstance(raw_entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    for raw in raw_entries:
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: baseline entries must be objects")
        rule = raw.get("rule")
        key = raw.get("key")
        if not isinstance(rule, str) or not isinstance(key, str) or not key:
            raise ValueError(
                f"{path}: baseline entries need string 'rule' and 'key'"
            )
        justification = raw.get("justification", "")
        entries.append(
            BaselineEntry(
                rule=rule,
                key=key,
                justification=(
                    justification if isinstance(justification, str) else ""
                ),
            )
        )
    return entries


def find_baseline(paths: Sequence[str]) -> Optional[str]:
    """Walk up from the first analyzed path looking for the baseline."""
    for start in paths:
        current = os.path.abspath(start)
        if os.path.isfile(current):
            current = os.path.dirname(current)
        while True:
            candidate = os.path.join(current, BASELINE_FILENAME)
            if os.path.isfile(candidate):
                return candidate
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    return None


@dataclass
class InterprocReport:
    """Everything the whole-program half of a lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    #: Findings accepted by the baseline (not failing the run).
    baselined: List[Finding] = field(default_factory=list)
    graphs: Dict[str, Dict[str, object]] = field(default_factory=dict)
    model: Optional[ProgramModel] = None


def run_interproc(
    paths: Sequence[str],
    cache: Optional[SourceCache] = None,
    select: Optional[Iterable[str]] = None,
    baseline_path: Optional[str] = None,
    baseline_entries: Optional[Sequence[BaselineEntry]] = None,
) -> InterprocReport:
    """Run the interprocedural analyses over ``paths``.

    ``select`` filters by rule id (unknown ids raise ``ValueError``, like
    the per-file driver).  ``baseline_path`` points at an accepted-
    findings file; pass ``baseline_entries`` to inject entries directly
    (tests).  Suppressions are applied before the baseline, so an inline
    ``# hdqo: ignore[...]`` never needs a baseline entry too.
    """
    cache = cache if cache is not None else SourceCache()
    analyses = all_analyses()
    if select is not None:
        wanted = {name.strip() for name in select if name.strip()}
        known = {str(getattr(a, "rule_id")) for a in analyses}
        unknown = wanted - known
        if unknown:
            raise ValueError(
                f"unknown interproc rule id(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(known))}"
            )
        analyses = [
            a for a in analyses if str(getattr(a, "rule_id")) in wanted
        ]

    model = build_program(paths, cache)
    report = InterprocReport(model=model)

    raw_findings: List[Finding] = []
    lock_graph: Optional[LockGraph] = None
    for analysis in analyses:
        checker = getattr(analysis, "check")
        raw_findings.extend(checker(model))
        if isinstance(analysis, LockOrderAnalysis):
            lock_graph = analysis.graph

    sources = {module.source.path: module.source for module in model.modules.values()}
    survivors: List[Finding] = []
    for finding in raw_findings:
        source = sources.get(finding.path)
        if source is not None and source.suppressed(finding.rule_id, finding.line):
            report.suppressed += 1
        else:
            survivors.append(finding)

    entries: List[BaselineEntry] = list(baseline_entries or [])
    if baseline_path is not None and os.path.isfile(baseline_path):
        entries.extend(load_baseline(baseline_path))
    kept, baselined, stale = apply_baseline(survivors, entries)
    report.findings = kept
    report.baselined = baselined
    for entry in stale:
        report.findings.append(
            Finding(
                rule_id=_BASELINE_RULE,
                severity=WARNING,
                path=baseline_path or BASELINE_FILENAME,
                line=1,
                column=0,
                message=(
                    f"stale baseline entry: rule={entry.rule!r} "
                    f"key={entry.key!r} matched no finding — remove it"
                ),
                key=f"baseline-stale:{entry.rule}:{entry.key}",
            )
        )
    report.findings.sort(key=Finding.sort_key)

    report.graphs["call-graph"] = call_graph_json(model)
    if lock_graph is not None:
        report.graphs["lock-graph"] = lock_graph.to_json()
    return report


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (kept, baselined); also return stale entries."""
    accepted: Set[Tuple[str, str]] = {(e.rule, e.key) for e in entries}
    matched: Set[Tuple[str, str]] = set()
    kept: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        identity = (finding.rule_id, finding.key)
        if finding.key and identity in accepted:
            matched.add(identity)
            baselined.append(finding)
        else:
            kept.append(finding)
    stale = [e for e in entries if (e.rule, e.key) not in matched]
    return kept, baselined, stale


def call_graph_json(model: ProgramModel) -> Dict[str, object]:
    """The call graph as a plain-JSON artifact (CI uploads this)."""
    edges = sorted(
        (caller, callee)
        for caller, callees in model.callees.items()
        for callee in callees
    )
    unresolved = sum(
        1
        for fn in model.functions.values()
        for site in fn.calls
        if not site.resolved and site.name
    )
    return {
        "functions": len(model.functions),
        "classes": len(model.classes),
        "modules": len(model.modules),
        "thread_roots": sorted(model.thread_roots),
        "edges": [[caller, callee] for caller, callee in edges],
        "unresolved_calls": unresolved,
    }


def write_graphs(
    report: InterprocReport, directory: str
) -> List[str]:
    """Write the graph artifacts as JSON files; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for name, payload in sorted(report.graphs.items()):
        path = os.path.join(directory, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        written.append(path)
    return written


__all__ = [
    "BASELINE_FILENAME",
    "BaselineEntry",
    "InterprocReport",
    "all_analyses",
    "apply_baseline",
    "call_graph_json",
    "find_baseline",
    "interproc_rule_ids",
    "load_baseline",
    "run_interproc",
    "write_graphs",
]

"""Codec-completeness analysis: every error type must cross the wire.

The shard boundary reconstructs typed errors from plain data via the
codec tables in ``repro.shard.messages``: ``_ERROR_FIELDS`` (structured
constructors, encoded attribute-by-attribute) and ``_MESSAGE_ONLY``
(constructors taking just a message).  An error class missing from both
tables still *works* — it degrades to a generic ``ShardError`` carrying
the original type name — but the caller silently loses the type and its
structured payload, which breaks typed ``except`` clauses across the
process boundary.

This analysis enumerates every ``ReproError`` subclass in the program
(the class hierarchy is resolved statically, so new error modules are
picked up automatically) and verifies against the statically-parsed
tables:

* **registration** — every concrete subclass appears in one table;
* **signature** — ``_ERROR_FIELDS`` tuples are passed *positionally* to
  the constructor on decode, so each field must name the parameter at
  its position (``args0`` stands for the leading message), the tuple
  must cover every non-defaulted parameter, and each encoded field must
  be stored as an instance attribute (``self.<field> = …``) somewhere in
  the ``__init__`` chain — otherwise ``encode_error`` ships ``None``;
* **losslessness** — a ``_MESSAGE_ONLY`` class whose own constructor
  takes structured parameters beyond the message would drop them in the
  round-trip; it belongs in ``_ERROR_FIELDS`` instead;
* **liveness** — table entries naming no known error class are flagged
  as stale (they mask nothing and rot silently).

If the analyzed paths contain no codec tables (e.g. linting a subtree),
the analysis is a no-op rather than a wall of false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import ERROR, WARNING, Finding
from repro.analysis.interproc.model import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProgramModel,
)

RULE_ID = "interproc-codec"

#: The root of the error hierarchy the codec must cover.
ERROR_ROOT = "ReproError"


class CodecTables:
    """The statically-parsed codec tables of one module."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.fields: Dict[str, Tuple[str, ...]] = {}
        self.message_only: Set[str] = set()
        #: Line of each table entry / table, for anchored findings.
        self.entry_lines: Dict[str, int] = {}
        self.table_line = 1

    @property
    def registered(self) -> Set[str]:
        return set(self.fields) | self.message_only


def find_codec_tables(model: ProgramModel) -> Optional[CodecTables]:
    """Locate and parse ``_ERROR_FIELDS`` / ``_MESSAGE_ONLY`` literals."""
    for module in model.modules.values():
        tables = _parse_tables(module)
        if tables is not None:
            return tables
    return None


def _parse_tables(module: ModuleInfo) -> Optional[CodecTables]:
    tables = CodecTables(module)
    found_fields = False
    found_message_only = False
    for node in module.source.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "_ERROR_FIELDS" and isinstance(value, ast.Dict):
                found_fields = True
                tables.table_line = node.lineno
                for key_node, value_node in zip(value.keys, value.values):
                    name = _const_str(key_node)
                    if name is None:
                        continue
                    fields = _str_tuple(value_node)
                    if fields is not None:
                        tables.fields[name] = fields
                        tables.entry_lines[name] = int(
                            getattr(key_node, "lineno", node.lineno)
                        )
            elif target.id == "_MESSAGE_ONLY":
                names = _str_collection(value)
                if names is not None:
                    found_message_only = True
                    for name in names:
                        tables.message_only.add(name)
                        tables.entry_lines.setdefault(name, node.lineno)
    if found_fields and found_message_only:
        return tables
    return None


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _str_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        values = [_const_str(element) for element in node.elts]
        if all(value is not None for value in values):
            return tuple(value for value in values if value is not None)
    return None


def _str_collection(node: ast.expr) -> Optional[List[str]]:
    # ``frozenset({...})`` / ``frozenset([...])`` / a set literal.
    inner: Optional[ast.expr] = None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"frozenset", "set"}
        and len(node.args) == 1
    ):
        inner = node.args[0]
    elif isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        inner = node
    if inner is None or not isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
        return None
    values = [_const_str(element) for element in inner.elts]
    if all(value is not None for value in values):
        return [value for value in values if value is not None]
    return None


class _Constructor:
    """The resolved ``__init__`` signature of an error class."""

    def __init__(
        self,
        params: List[str],
        required: List[str],
        own: bool,
        stored: Set[str],
    ) -> None:
        self.params = params  # positional params after self, in order
        self.required = required  # the ones without defaults
        self.own = own  # defined by the class itself (not inherited)
        self.stored = stored  # attributes assigned in the __init__ chain


def _constructor_of(model: ProgramModel, info: ClassInfo) -> _Constructor:
    params: List[str] = []
    required: List[str] = []
    own = False
    stored: Set[str] = set()
    signature_taken = False
    for ancestor in model.mro(info.qualname):
        init_qualname = ancestor.methods.get("__init__")
        if init_qualname is None:
            continue
        fn = model.functions.get(init_qualname)
        if fn is None:
            continue
        stored |= _self_assignments(fn)
        if not signature_taken:
            signature_taken = True
            own = ancestor.qualname == info.qualname
            args = fn.node.args
            positional = [arg.arg for arg in args.args]
            if positional[:1] == ["self"]:
                positional = positional[1:]
            params = positional
            defaults = len(args.defaults)
            required = positional[: len(positional) - defaults]
    return _Constructor(params, required, own, stored)


def _self_assignments(fn: FunctionInfo) -> Set[str]:
    stored: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets: List[ast.expr] = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    stored.add(target.attr)
    return stored


class CodecCompletenessAnalysis:
    """Verify the shard error codec covers the whole error hierarchy."""

    rule_id = RULE_ID
    severity = ERROR
    description = (
        "every ReproError subclass must round-trip through the shard "
        "codec without degrading to a generic ShardError"
    )

    def check(self, model: ProgramModel) -> List[Finding]:
        tables = find_codec_tables(model)
        error_classes = {
            info.name: info for info in model.subclasses_of(ERROR_ROOT)
        }
        if tables is None or not error_classes:
            return []
        findings: List[Finding] = []
        for name in sorted(error_classes):
            info = error_classes[name]
            if name not in tables.registered:
                findings.append(
                    _finding_at_class(
                        self, info,
                        key=f"codec-unregistered:{name}",
                        message=(
                            f"{name} is not registered in the shard error "
                            f"codec ({tables.module.path}: _ERROR_FIELDS / "
                            f"_MESSAGE_ONLY); it will cross the process "
                            f"boundary as a degraded ShardError"
                        ),
                    )
                )
                continue
            constructor = _constructor_of(model, info)
            if name in tables.fields:
                findings.extend(
                    self._check_fields(
                        tables, info, constructor, tables.fields[name]
                    )
                )
            elif name in tables.message_only and constructor.own:
                extra = [p for p in constructor.params[1:]]
                if extra:
                    findings.append(
                        _finding_at_class(
                            self, info,
                            key=f"codec-lossy:{name}",
                            message=(
                                f"{name} is registered _MESSAGE_ONLY but its "
                                f"constructor carries structured state "
                                f"({', '.join(extra)}); the round-trip "
                                f"silently drops it — register it in "
                                f"_ERROR_FIELDS instead"
                            ),
                        )
                    )
        for name in sorted(tables.registered):
            if name != ERROR_ROOT and name not in error_classes:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        severity=WARNING,
                        path=tables.module.source.path,
                        line=tables.entry_lines.get(name, tables.table_line),
                        column=0,
                        message=(
                            f"codec entry {name!r} matches no known "
                            f"ReproError subclass (stale or misspelled)"
                        ),
                        key=f"codec-stale:{name}",
                    )
                )
        findings.sort(key=Finding.sort_key)
        return findings

    def _check_fields(
        self,
        tables: CodecTables,
        info: ClassInfo,
        constructor: _Constructor,
        fields: Tuple[str, ...],
    ) -> List[Finding]:
        problems: List[str] = []
        if len(fields) > len(constructor.params):
            problems.append(
                f"{len(fields)} encoded fields but the constructor takes "
                f"{len(constructor.params)}"
            )
        for position, field_name in enumerate(fields):
            if position >= len(constructor.params):
                break
            param = constructor.params[position]
            if field_name == "args0":
                if position != 0:
                    problems.append("args0 must be the first field")
                continue
            if field_name != param:
                problems.append(
                    f"field {position} is {field_name!r} but the "
                    f"constructor parameter there is {param!r} "
                    f"(decode passes fields positionally)"
                )
            if field_name not in constructor.stored:
                problems.append(
                    f"{field_name!r} is never stored as an instance "
                    f"attribute, so encode_error would ship None"
                )
        for param in constructor.required[len(fields):]:
            problems.append(
                f"required constructor parameter {param!r} is not encoded; "
                f"decode would raise TypeError and degrade to ShardError"
            )
        if not problems:
            return []
        return [
            Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=tables.module.source.path,
                line=tables.entry_lines.get(info.name, tables.table_line),
                column=0,
                message=(
                    f"_ERROR_FIELDS[{info.name!r}] does not match the "
                    f"constructor: " + "; ".join(problems)
                ),
                key=f"codec-signature:{info.name}",
            )
        ]


def _finding_at_class(
    analysis: CodecCompletenessAnalysis,
    info: ClassInfo,
    key: str,
    message: str,
) -> Finding:
    return Finding(
        rule_id=analysis.rule_id,
        severity=analysis.severity,
        path=info.source.path,
        line=int(info.node.lineno),
        column=int(info.node.col_offset),
        message=message,
        key=key,
    )


__all__ = [
    "CodecCompletenessAnalysis",
    "CodecTables",
    "ERROR_ROOT",
    "RULE_ID",
    "find_codec_tables",
]

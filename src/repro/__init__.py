"""repro — Query-oriented hypertree decompositions for query optimization.

A full reproduction of Ghionna, Granata, Greco & Scarcello, *Hypertree
Decompositions for Query Optimization* (ICDE 2007): the q-hypertree
decomposition notion, the cost-k-decomp hybrid optimizer, a stand-alone SQL
view rewriter, a tight coupling with a simulated PostgreSQL-like engine,
and the full experimental harness (TPC-H Q5/Q8, acyclic and chain
workloads).

Quickstart::

    from repro import parse_sql
    from repro.core import HybridOptimizer
    from repro.workloads.tpch import generate_tpch_database

    db = generate_tpch_database(size_mb=10, seed=0)
    optimizer = HybridOptimizer(database=db, max_width=4)
    plan = optimizer.optimize("SELECT ... FROM ... WHERE ...")
    answer = plan.execute()
"""

from repro.errors import (
    DeadlineExceeded,
    DecompositionError,
    DecompositionNotFound,
    ExecutionError,
    HypergraphError,
    InjectedFault,
    MemoryBudgetExceeded,
    OptimizationError,
    QueryCancelled,
    QueryError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    WorkBudgetExceeded,
)
from repro.hypergraph import Hyperedge, Hypergraph, is_acyclic
from repro.query import ConjunctiveQuery, Atom, parse_sql, sql_to_conjunctive
from repro.relational import Database, Relation
from repro.metering import SpillModel, WorkMeter
from repro.core import (
    Hypertree,
    HybridOptimizer,
    det_k_decomp,
    hypertree_width,
    install_structural_optimizer,
    q_hypertree_decomp,
)
from repro.engine import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS
from repro.errors import ServiceClosed, ServiceError, ServiceOverloaded
from repro.service import PlanCache, QueryService, ServiceMetrics
from repro.obs import MetricsRegistry, Tracer, current_tracer, tracing
from repro.resilience import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    ExecutionContext,
    FaultInjector,
    MemoryBudget,
    current_context,
    resilient,
)

__version__ = "1.3.0"

__all__ = [
    "ReproError",
    "HypergraphError",
    "QueryError",
    "SqlSyntaxError",
    "SchemaError",
    "ExecutionError",
    "WorkBudgetExceeded",
    "DeadlineExceeded",
    "QueryCancelled",
    "MemoryBudgetExceeded",
    "InjectedFault",
    "DecompositionError",
    "DecompositionNotFound",
    "OptimizationError",
    "Hyperedge",
    "Hypergraph",
    "is_acyclic",
    "ConjunctiveQuery",
    "Atom",
    "parse_sql",
    "sql_to_conjunctive",
    "Database",
    "Relation",
    "WorkMeter",
    "SpillModel",
    "Hypertree",
    "HybridOptimizer",
    "det_k_decomp",
    "hypertree_width",
    "install_structural_optimizer",
    "q_hypertree_decomp",
    "SimulatedDBMS",
    "COMMDB_PROFILE",
    "POSTGRES_PROFILE",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceClosed",
    "QueryService",
    "PlanCache",
    "ServiceMetrics",
    "Tracer",
    "current_tracer",
    "tracing",
    "MetricsRegistry",
    "Deadline",
    "CancellationToken",
    "ExecutionContext",
    "MemoryBudget",
    "FaultInjector",
    "CircuitBreaker",
    "current_context",
    "resilient",
    "__version__",
]

"""Join-tree / join-forest construction for acyclic hypergraphs.

A *join forest* of a hypergraph has one node per hyperedge; for any two
hyperedges sharing variables, the shared variables appear on every node of
the (unique) path between them (§2 of the paper).  Acyclic queries are
exactly those admitting a join forest, and Yannakakis's algorithm runs over
it.

Construction rides on GYO reduction: when an ear ``h`` is absorbed by
``h'``, attach ``h`` as a child of ``h'``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.algorithms import gyo_reduction
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


class JoinTreeNode:
    """One node of a join tree: a hyperedge plus its children."""

    __slots__ = ("edge", "children", "parent")

    def __init__(self, edge: Hyperedge):
        self.edge = edge
        self.children: List["JoinTreeNode"] = []
        self.parent: Optional["JoinTreeNode"] = None

    def add_child(self, child: "JoinTreeNode") -> None:
        child.parent = self
        self.children.append(child)

    def walk(self) -> Iterable["JoinTreeNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def postorder(self) -> Iterable["JoinTreeNode"]:
        """Post-order traversal (children before parents) — Yannakakis order."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return f"JoinTreeNode({self.edge!r}, children={len(self.children)})"


def build_join_forest(hypergraph: Hypergraph) -> List[JoinTreeNode]:
    """Build a join forest for an acyclic hypergraph.

    Returns one root per connected component.  Raises
    :class:`HypergraphError` if the hypergraph is cyclic.
    """
    if len(hypergraph) == 0:
        return []
    residual, removal_log = gyo_reduction(hypergraph)
    if len(residual) != 0:
        raise HypergraphError(
            "hypergraph is cyclic; no join forest exists "
            f"(irreducible core: {sorted(e.name for e in residual)})"
        )

    nodes: Dict[str, JoinTreeNode] = {
        edge.name: JoinTreeNode(edge) for edge in hypergraph
    }
    roots: List[JoinTreeNode] = []
    for removed, absorber in removal_log:
        if absorber is None:
            roots.append(nodes[removed])
        else:
            nodes[absorber].add_child(nodes[removed])
    return roots


def build_join_tree(hypergraph: Hypergraph) -> JoinTreeNode:
    """Build a join tree; requires the hypergraph to be acyclic *and* connected.

    For convenience, a forest with several roots is stitched under the first
    root only when the roots share no variables (true forests); otherwise a
    :class:`HypergraphError` is raised.
    """
    roots = build_join_forest(hypergraph)
    if not roots:
        raise HypergraphError("cannot build a join tree of an empty hypergraph")
    if len(roots) == 1:
        return roots[0]
    # Disconnected acyclic hypergraph: gluing the roots is safe because the
    # connectedness condition is vacuous across variable-disjoint subtrees.
    head, *rest = roots
    for other in rest:
        if head.edge.vertices & other.edge.vertices:
            raise HypergraphError("join forest roots unexpectedly share variables")
        head.add_child(other)
    return head


def verify_join_tree(root: JoinTreeNode) -> bool:
    """Check the connectedness condition of a join tree.

    For every variable, the set of nodes containing it must induce a
    connected subtree.  Used by tests and by property-based checks.
    """
    # Collect, for each variable, the nodes containing it.
    holders: Dict[str, List[JoinTreeNode]] = {}
    for node in root.walk():
        for vertex in node.edge.vertices:
            holders.setdefault(vertex, []).append(node)

    # A variable's holders form a connected subtree iff the number of holders
    # whose parent also holds the variable is exactly len(holders) - 1.
    for vertex, nodes in holders.items():
        node_set = set(id(n) for n in nodes)
        linked = sum(
            1
            for node in nodes
            if node.parent is not None and id(node.parent) in node_set
        )
        if linked != len(nodes) - 1:
            return False
    return True

"""Classical structural algorithms on hypergraphs.

These are the primitives the decomposition layer is built on:

* **GYO reduction** — the Graham / Yu–Ozsoyoglu ear-removal procedure.  A
  hypergraph is (α-)acyclic iff GYO reduces it to nothing; the removal order
  additionally yields a join forest (see :mod:`repro.hypergraph.jointree`).
* **connected components** relative to a separator — the [λ]-components of
  det-k-decomp: edges of a sub-hypergraph connected once the separator's
  vertices are deleted.
* **primal graph** — the Gaifman graph of the hypergraph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


def primal_graph(hypergraph: Hypergraph) -> Dict[str, Set[str]]:
    """Return the primal (Gaifman) graph as an adjacency mapping.

    Two vertices are adjacent iff they co-occur in some hyperedge.
    """
    adjacency: Dict[str, Set[str]] = {v: set() for v in hypergraph.vertices}
    for edge in hypergraph:
        for vertex in edge.vertices:
            adjacency[vertex] |= edge.vertices - {vertex}
    return adjacency


def gyo_reduction(
    hypergraph: Hypergraph,
) -> Tuple[Hypergraph, List[Tuple[str, Optional[str]]]]:
    """Run the GYO ear-removal procedure.

    Repeatedly:

    1. remove vertices that occur in exactly one hyperedge;
    2. remove a hyperedge whose (reduced) vertex set is contained in another
       hyperedge (an *ear*), recording which edge absorbed it.

    Returns:
        ``(residual, removal_log)`` where ``residual`` is the irreducible
        sub-hypergraph (empty iff the input was acyclic) and ``removal_log``
        is a list of ``(removed_edge_name, absorbing_edge_name)`` pairs in
        removal order.  The final surviving edge of an acyclic hypergraph is
        logged with absorber ``None``.
    """
    # Mutable reduced view: edge name -> current vertex set.
    current: Dict[str, Set[str]] = {
        edge.name: set(edge.vertices) for edge in hypergraph
    }
    incidence: Dict[str, Set[str]] = {}
    for name, verts in current.items():
        for vertex in verts:
            incidence.setdefault(vertex, set()).add(name)

    removal_log: List[Tuple[str, Optional[str]]] = []

    def drop_lonely_vertices() -> bool:
        changed = False
        lonely = [v for v, names in incidence.items() if len(names) == 1]
        for vertex in lonely:
            (owner,) = incidence[vertex]
            current[owner].discard(vertex)
            del incidence[vertex]
            changed = True
        return changed

    def drop_one_ear() -> bool:
        names = sorted(current)
        for name in names:
            verts = current[name]
            if not verts:
                # All vertices were lonely: the edge shared nothing with
                # anyone, so it is an isolated component — its own root.
                del current[name]
                removal_log.append((name, None))
                return True
            for other in names:
                if other == name:
                    continue
                if verts <= current[other]:
                    # `name` is an ear absorbed by `other`.
                    for vertex in verts:
                        incidence[vertex].discard(name)
                    del current[name]
                    removal_log.append((name, other))
                    return True
        return False

    progress = True
    while progress and current:
        progress = drop_lonely_vertices()
        progress = drop_one_ear() or progress

    if len(current) == 1:
        # A single irreducible edge means the hypergraph was acyclic.
        (last,) = current
        removal_log.append((last, None))
        current.clear()

    residual_edges = [
        Hyperedge(name, hypergraph.edge(name).vertices) for name in current
    ]
    return Hypergraph(residual_edges), removal_log


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is α-acyclic (GYO-reducible to nothing)."""
    if len(hypergraph) == 0:
        return True
    residual, _log = gyo_reduction(hypergraph)
    return len(residual) == 0


def vertex_connected_components(
    hypergraph: Hypergraph, excluded_vertices: Iterable[str] = ()
) -> List[FrozenSet[str]]:
    """Vertex components of the hypergraph after deleting ``excluded_vertices``.

    Two vertices are connected if some hyperedge contains both (and neither
    is excluded).  Returns a deterministic (sorted) list of vertex sets.
    """
    excluded = frozenset(excluded_vertices)
    remaining = [v for v in sorted(hypergraph.vertices) if v not in excluded]
    adjacency = primal_graph(hypergraph)

    seen: Set[str] = set()
    components: List[FrozenSet[str]] = []
    for start in remaining:
        if start in seen:
            continue
        stack = [start]
        component: Set[str] = set()
        while stack:
            vertex = stack.pop()
            if vertex in seen or vertex in excluded:
                continue
            seen.add(vertex)
            component.add(vertex)
            stack.extend(
                nbr for nbr in adjacency[vertex] if nbr not in seen and nbr not in excluded
            )
        if component:
            components.append(frozenset(component))
    return components


def connected_components(
    hypergraph: Hypergraph,
    edge_names: Iterable[str],
    separator_vertices: Iterable[str],
) -> List[FrozenSet[str]]:
    """[λ]-components: partition ``edge_names`` by connectivity modulo a separator.

    Two edges are connected when they share a vertex **not** in
    ``separator_vertices``.  Edges entirely covered by the separator belong
    to no component (they need no further decomposition).  This is exactly
    the component notion used by det-k-decomp.

    Returns:
        A deterministic list of frozensets of edge names.
    """
    separator = frozenset(separator_vertices)
    names = sorted(set(edge_names))

    # Union-find over edges, linked through shared non-separator vertices.
    parent: Dict[str, str] = {name: name for name in names}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    vertex_owner: Dict[str, str] = {}
    uncovered: List[str] = []
    for name in names:
        free_vertices = hypergraph.edge(name).vertices - separator
        if not free_vertices:
            continue  # fully covered by the separator
        uncovered.append(name)
        for vertex in free_vertices:
            if vertex in vertex_owner:
                union(vertex_owner[vertex], name)
            else:
                vertex_owner[vertex] = name

    groups: Dict[str, Set[str]] = {}
    for name in uncovered:
        groups.setdefault(find(name), set()).add(name)
    return [frozenset(group) for _, group in sorted(groups.items())]


def component_frontier(
    hypergraph: Hypergraph,
    component_edges: Iterable[str],
    separator_vertices: Iterable[str],
) -> FrozenSet[str]:
    """Vertices shared between a component and its separator.

    In det-k-decomp terms this is the *connector* set the child separator
    must cover: ``var(component) ∩ separator``.
    """
    separator = frozenset(separator_vertices)
    return frozenset(hypergraph.variables_of(component_edges) & separator)

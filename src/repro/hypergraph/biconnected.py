"""Biconnected components: the earliest structural decomposition method.

The paper's introduction lists Freuder's biconnected-components method [2]
among the structural techniques hypertree decompositions generalize.  A
query's primal graph splits at articulation (cut) vertices into biconnected
blocks; evaluation cost is then bounded by the largest block, and the
block–cut tree gives an evaluation order.

This module implements Hopcroft–Tarjan biconnected components over the
query's primal graph, the block–cut tree, and the *biconnected width* (size
of the largest block) — a coarse upper bound that hypertree width always
improves on (hw(H) ≤ bicomp-width for every hypergraph, and is often much
smaller — that gap is what motivates the paper's method).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.algorithms import primal_graph
from repro.hypergraph.hypergraph import Hypergraph


def biconnected_components(
    adjacency: Dict[str, Set[str]],
) -> Tuple[List[FrozenSet[str]], FrozenSet[str]]:
    """Biconnected components and articulation vertices of a graph.

    Iterative Hopcroft–Tarjan over an adjacency mapping.  Isolated vertices
    form singleton components.

    Returns:
        ``(components, articulation_vertices)`` where each component is a
        frozen set of vertices.
    """
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    parent: Dict[str, Optional[str]] = {}
    counter = 0
    components: List[FrozenSet[str]] = []
    articulation: Set[str] = set()
    edge_stack: List[Tuple[str, str]] = []

    for root in sorted(adjacency):
        if root in index:
            continue
        if not adjacency[root]:
            components.append(frozenset({root}))
            continue
        # Iterative DFS with explicit neighbour iterators.
        parent[root] = None
        index[root] = low[root] = counter
        counter += 1
        root_children = 0
        stack = [(root, iter(sorted(adjacency[root])))]
        while stack:
            vertex, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour == parent[vertex]:
                    continue
                if neighbour not in index:
                    parent[neighbour] = vertex
                    index[neighbour] = low[neighbour] = counter
                    counter += 1
                    edge_stack.append((vertex, neighbour))
                    if vertex == root:
                        root_children += 1
                    stack.append((neighbour, iter(sorted(adjacency[neighbour]))))
                    advanced = True
                    break
                if index[neighbour] < index[vertex]:
                    # Back edge.
                    edge_stack.append((vertex, neighbour))
                    low[vertex] = min(low[vertex], index[neighbour])
            if advanced:
                continue
            stack.pop()
            if not stack:
                continue
            above, _ = stack[-1]
            low[above] = min(low[above], low[vertex])
            if low[vertex] >= index[above]:
                # `above` separates `vertex`'s subtree: pop one block.
                block: Set[str] = set()
                while edge_stack:
                    u, v = edge_stack[-1]
                    if index.get(u, -1) >= index[vertex] or (u, v) == (above, vertex):
                        edge_stack.pop()
                        block.update((u, v))
                        if (u, v) == (above, vertex):
                            break
                    else:
                        break
                if block:
                    components.append(frozenset(block))
                if above != root or root_children > 1:
                    articulation.add(above)
        # Any residual edges (shouldn't happen) — flush defensively.
        if edge_stack:
            block = set()
            for u, v in edge_stack:
                block.update((u, v))
            edge_stack.clear()
            components.append(frozenset(block))
    return components, frozenset(articulation)


def primal_biconnected_components(
    hypergraph: Hypergraph,
) -> Tuple[List[FrozenSet[str]], FrozenSet[str]]:
    """Biconnected components of the query's primal graph."""
    return biconnected_components(primal_graph(hypergraph))


def biconnected_width(hypergraph: Hypergraph) -> int:
    """Freuder's bound: the size of the largest biconnected block.

    For acyclic (Berge-cycle-free primal) inputs this is ≤ the largest
    hyperedge; for cyclic queries it can be as large as var(H) — the gap to
    hypertree width is what motivated the later decomposition methods.
    """
    if len(hypergraph) == 0:
        return 0
    components, _ = primal_biconnected_components(hypergraph)
    if not components:
        return 1
    return max(len(c) for c in components)


def block_cut_tree(
    hypergraph: Hypergraph,
) -> Dict[FrozenSet[str], List[FrozenSet[str]]]:
    """The block–cut adjacency: block → neighbouring blocks.

    Two blocks are adjacent when they share an articulation vertex; the
    resulting structure is a forest, Freuder's evaluation skeleton.
    """
    components, articulation = primal_biconnected_components(hypergraph)
    adjacency: Dict[FrozenSet[str], List[FrozenSet[str]]] = {
        block: [] for block in components
    }
    for vertex in articulation:
        touching = [block for block in components if vertex in block]
        for i, block in enumerate(touching):
            for other in touching[i + 1 :]:
                adjacency[block].append(other)
                adjacency[other].append(block)
    return adjacency

"""Generators for structured and random hypergraphs.

Used by tests, property-based checks and the synthetic workloads of §6:
*line* hypergraphs are the acyclic queries of Fig. 7(a)/(c), *cycle*
hypergraphs are the chain queries of Fig. 7(b)/(d), and grids/cliques give
families of known treewidth/hypertree-width for exercising the decomposer.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import HypergraphError
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


def line_hypergraph(n_atoms: int, shared: int = 1, private: int = 1) -> Hypergraph:
    """The hypergraph of an acyclic *line* query with ``n_atoms`` atoms.

    Atom ``p_i`` shares ``shared`` variables with ``p_{i+1}`` and has
    ``private`` variables of its own:  x_i ∩ x_{i+1} ≠ ∅ and
    x_i ∩ x_j = ∅ for non-adjacent i, j — exactly the acyclic family of §6.
    """
    if n_atoms < 1:
        raise HypergraphError("a line hypergraph needs at least one atom")
    edges: List[Hyperedge] = []
    for i in range(n_atoms):
        vertices = [f"S{i}_{j}" for j in range(shared)]  # shared with p_{i+1}
        if i > 0:
            vertices += [f"S{i - 1}_{j}" for j in range(shared)]
        vertices += [f"P{i}_{j}" for j in range(private)]
        edges.append(Hyperedge(f"p{i}", vertices))
    return Hypergraph(edges)


def cycle_hypergraph(n_atoms: int, shared: int = 1, private: int = 1) -> Hypergraph:
    """The hypergraph of a *chain* query: a line whose endpoints also share.

    This is the simplest cyclic variation of the line family (x_1 ∩ x_n ≠ ∅,
    §6 of the paper); its hypertree width is 2 for ``n_atoms`` ≥ 3.
    """
    if n_atoms < 2:
        raise HypergraphError("a cycle hypergraph needs at least two atoms")
    edges: List[Hyperedge] = []
    for i in range(n_atoms):
        vertices = [f"S{i}_{j}" for j in range(shared)]
        prev = (i - 1) % n_atoms
        vertices += [f"S{prev}_{j}" for j in range(shared)]
        vertices += [f"P{i}_{j}" for j in range(private)]
        edges.append(Hyperedge(f"p{i}", vertices))
    return Hypergraph(edges)


def clique_hypergraph(n_vertices: int) -> Hypergraph:
    """All 2-element hyperedges over ``n_vertices`` vertices (a graph clique)."""
    if n_vertices < 2:
        raise HypergraphError("a clique hypergraph needs at least two vertices")
    edges = []
    for i in range(n_vertices):
        for j in range(i + 1, n_vertices):
            edges.append(Hyperedge(f"e{i}_{j}", [f"X{i}", f"X{j}"]))
    return Hypergraph(edges)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """Binary-edge grid graph as a hypergraph (treewidth = min(rows, cols))."""
    if rows < 1 or cols < 1:
        raise HypergraphError("grid dimensions must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(
                    Hyperedge(f"h{r}_{c}", [f"V{r}_{c}", f"V{r}_{c + 1}"])
                )
            if r + 1 < rows:
                edges.append(
                    Hyperedge(f"v{r}_{c}", [f"V{r}_{c}", f"V{r + 1}_{c}"])
                )
    return Hypergraph(edges)


def random_hypergraph(
    n_vertices: int,
    n_edges: int,
    max_arity: int = 4,
    seed: Optional[int] = None,
) -> Hypergraph:
    """A random hypergraph with connected cover of the vertex universe.

    Every edge picks between 1 and ``max_arity`` distinct vertices uniformly;
    a final pass guarantees every vertex occurs in at least one edge so the
    result is a well-formed query hypergraph.
    """
    if n_vertices < 1 or n_edges < 1:
        raise HypergraphError("random hypergraph needs positive sizes")
    if max_arity < 1:
        raise HypergraphError("max_arity must be at least 1")
    rng = random.Random(seed)
    universe = [f"X{i}" for i in range(n_vertices)]
    edges: List[Hyperedge] = []
    for i in range(n_edges):
        arity = rng.randint(1, min(max_arity, n_vertices))
        vertices = rng.sample(universe, arity)
        edges.append(Hyperedge(f"r{i}", vertices))
    covered = set()
    for edge in edges:
        covered |= edge.vertices
    missing = [v for v in universe if v not in covered]
    for k, vertex in enumerate(missing):
        edges.append(Hyperedge(f"fill{k}", [vertex]))
    return Hypergraph(edges)

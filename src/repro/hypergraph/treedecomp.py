"""Tree decompositions of the primal graph (related-work substrate).

The paper's introduction cites tree decompositions (Robertson–Seymour [9];
Flum–Frick–Grohe query evaluation [1]) among the structural methods that
hypertree decompositions generalize.  This module implements the standard
**min-fill elimination** heuristic: eliminate vertices in min-fill order
over the primal graph, emit one bag per elimination step, and connect each
bag to the first later bag containing its clique — a valid tree
decomposition whose width upper-bounds the treewidth.

The interest for the paper's story is the comparison: for a query Q,

    hw(H(Q))  ≤  tw(primal(Q)) + 1   …and often far smaller,

because a single wide hyperedge (a high-arity atom) blows up the primal
clique but costs hypertree width 1.  :func:`treewidth_min_fill` exposes the
heuristic width; :class:`TreeDecomposition` carries the bags and validates
the three tree-decomposition conditions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import DecompositionError, HypergraphError
from repro.hypergraph.algorithms import primal_graph
from repro.hypergraph.hypergraph import Hypergraph


class TreeBag:
    """One bag of a tree decomposition."""

    __slots__ = ("bag_id", "vertices", "children", "parent")

    def __init__(self, bag_id: int, vertices: Iterable[str]):
        self.bag_id = bag_id
        self.vertices: FrozenSet[str] = frozenset(vertices)
        self.children: List["TreeBag"] = []
        self.parent: Optional["TreeBag"] = None

    def add_child(self, child: "TreeBag") -> None:
        child.parent = self
        self.children.append(child)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"TreeBag({self.bag_id}, {sorted(self.vertices)})"


class TreeDecomposition:
    """A rooted tree decomposition of a graph (here: a query's primal graph)."""

    def __init__(self, root: TreeBag, universe: FrozenSet[str]):
        self.root = root
        self.universe = universe

    def bags(self) -> List[TreeBag]:
        return list(self.root.walk())

    @property
    def width(self) -> int:
        """max |bag| − 1, the tree-decomposition width."""
        return max(len(bag.vertices) for bag in self.bags()) - 1

    # -- the three conditions ---------------------------------------------

    def covers_vertices(self) -> bool:
        covered: Set[str] = set()
        for bag in self.bags():
            covered |= bag.vertices
        return covered >= self.universe

    def covers_edges(self, adjacency: Dict[str, Set[str]]) -> bool:
        bag_list = [bag.vertices for bag in self.bags()]
        for vertex, neighbours in adjacency.items():
            for other in neighbours:
                if vertex < other and not any(
                    vertex in bag and other in bag for bag in bag_list
                ):
                    return False
        return True

    def is_connected(self) -> bool:
        holders: Dict[str, List[TreeBag]] = {}
        for bag in self.bags():
            for vertex in bag.vertices:
                holders.setdefault(vertex, []).append(bag)
        for vertex, bags in holders.items():
            linked = sum(
                1
                for bag in bags
                if bag.parent is not None and vertex in bag.parent.vertices
            )
            if linked != len(bags) - 1:
                return False
        return True

    def is_valid(self, adjacency: Dict[str, Set[str]]) -> bool:
        return (
            self.covers_vertices()
            and self.covers_edges(adjacency)
            and self.is_connected()
        )


def _min_fill_order(adjacency: Dict[str, Set[str]]) -> List[str]:
    """Elimination order by the min-fill heuristic (deterministic ties)."""
    graph = {v: set(neighbours) for v, neighbours in adjacency.items()}
    order: List[str] = []
    while graph:
        def fill_in(vertex: str) -> int:
            neighbours = sorted(graph[vertex])
            missing = 0
            for i, u in enumerate(neighbours):
                for w in neighbours[i + 1 :]:
                    if w not in graph[u]:
                        missing += 1
            return missing

        vertex = min(sorted(graph), key=fill_in)
        neighbours = sorted(graph[vertex])
        for i, u in enumerate(neighbours):
            for w in neighbours[i + 1 :]:
                graph[u].add(w)
                graph[w].add(u)
        for u in neighbours:
            graph[u].discard(vertex)
        del graph[vertex]
        order.append(vertex)
    return order


def tree_decomposition_min_fill(hypergraph: Hypergraph) -> TreeDecomposition:
    """Tree decomposition of the primal graph via min-fill elimination.

    Raises:
        HypergraphError: on an empty hypergraph.
    """
    if len(hypergraph.vertices) == 0:
        raise HypergraphError("cannot decompose an empty vertex set")
    adjacency = primal_graph(hypergraph)
    order = _min_fill_order(adjacency)
    position = {vertex: i for i, vertex in enumerate(order)}

    # Build bags: bag_i = {v_i} ∪ (neighbours of v_i later in the order,
    # in the progressively filled graph).
    graph = {v: set(neighbours) for v, neighbours in adjacency.items()}
    bags: List[TreeBag] = []
    bag_vertices: List[FrozenSet[str]] = []
    for index, vertex in enumerate(order):
        later = {u for u in graph[vertex] if position[u] > index}
        bag = TreeBag(index, {vertex} | later)
        bags.append(bag)
        bag_vertices.append(bag.vertices)
        neighbours = sorted(later)
        for i, u in enumerate(neighbours):
            for w in neighbours[i + 1 :]:
                graph[u].add(w)
                graph[w].add(u)
        for u in neighbours:
            graph[u].discard(vertex)

    # Connect bag_i to the bag of its earliest-later clique member.
    for index, vertex in enumerate(order):
        rest = bag_vertices[index] - {vertex}
        if not rest:
            continue
        target = min(position[u] for u in rest)
        bags[target].add_child(bags[index])

    roots = [bag for bag in bags if bag.parent is None]
    root = roots[-1]
    for other in roots[:-1]:
        root.add_child(other)  # disconnected components hang off the root
    return TreeDecomposition(root, hypergraph.vertices)


def treewidth_min_fill(hypergraph: Hypergraph) -> int:
    """Min-fill upper bound on the treewidth of the query's primal graph."""
    return tree_decomposition_min_fill(hypergraph).width


def structural_summary(hypergraph: Hypergraph) -> Dict[str, object]:
    """All structural measures side by side (the intro's methods).

    Returns a dict with acyclicity, hypertree width (exact, bounded search),
    the min-fill treewidth bound, and Freuder's biconnected width —
    the comparison that motivates hypertree decompositions.
    """
    from repro.core.detkdecomp import hypertree_width
    from repro.hypergraph.algorithms import is_acyclic
    from repro.hypergraph.biconnected import biconnected_width
    from repro.hypergraph.hinges import degree_of_cyclicity

    acyclic = is_acyclic(hypergraph)
    summary: Dict[str, object] = {
        "edges": len(hypergraph),
        "variables": len(hypergraph.vertices),
        "acyclic": acyclic,
        "biconnected_width": biconnected_width(hypergraph),
        "hinge_degree": degree_of_cyclicity(hypergraph),
    }
    if len(hypergraph.vertices) > 0:
        summary["treewidth_min_fill"] = treewidth_min_fill(hypergraph)
    try:
        summary["hypertree_width"] = hypertree_width(hypergraph, max_k=6)
    except DecompositionError:
        summary["hypertree_width"] = ">6"
    return summary

"""Core hypergraph data structure.

The decomposition algorithms treat hyperedges as *named* objects: two query
atoms over the same variable set are distinct hyperedges (the paper obtains
this by implicitly adding a fresh variable per atom; we simply key edges by
name).  Vertices are arbitrary hashable labels, in practice variable names.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.errors import HypergraphError


class Hyperedge:
    """A named hyperedge: an immutable set of vertices with an identity.

    Equality and hashing are *by name*, so a :class:`Hypergraph` may contain
    two edges with identical vertex sets (e.g. two query atoms over the same
    relation), matching the paper's convention of distinguishing atoms by a
    fresh implicit variable.
    """

    __slots__ = ("name", "vertices")

    def __init__(self, name: str, vertices: Iterable[str]):
        self.name = name
        self.vertices: FrozenSet[str] = frozenset(vertices)
        if not isinstance(name, str) or not name:
            raise HypergraphError("hyperedge name must be a non-empty string")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hyperedge) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __contains__(self, vertex: str) -> bool:
        return vertex in self.vertices

    def __iter__(self) -> Iterator[str]:
        return iter(self.vertices)

    def __len__(self) -> int:
        return len(self.vertices)

    def __repr__(self) -> str:
        inner = ", ".join(sorted(self.vertices))
        return f"{self.name}({inner})"

    def intersects(self, vertices: Iterable[str]) -> bool:
        """Return True if this edge shares at least one vertex with ``vertices``."""
        other = vertices if isinstance(vertices, (set, frozenset)) else set(vertices)
        return not self.vertices.isdisjoint(other)


class Hypergraph:
    """A finite hypergraph with named hyperedges.

    Supports the operations needed by GYO reduction and the det-k-decomp /
    cost-k-decomp searches: vertex/edge lookup, incidence queries, and
    sub-hypergraphs induced by an edge subset.

    Args:
        edges: the hyperedges; names must be unique.
        extra_vertices: vertices that must exist even if no edge covers them
            (rare, but keeps round-trips through sub-hypergraphs lossless).
    """

    def __init__(
        self,
        edges: Iterable[Hyperedge] = (),
        extra_vertices: Iterable[str] = (),
    ):
        self._edges: Dict[str, Hyperedge] = {}
        self._incidence: Dict[str, Set[str]] = {}
        for vertex in extra_vertices:
            self._incidence.setdefault(vertex, set())
        for edge in edges:
            self.add_edge(edge)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Iterable[str]]) -> "Hypergraph":
        """Build a hypergraph from a ``{edge_name: vertices}`` mapping."""
        return cls(Hyperedge(name, verts) for name, verts in mapping.items())

    def add_edge(self, edge: Hyperedge) -> None:
        """Add ``edge``; raises :class:`HypergraphError` on a duplicate name."""
        if edge.name in self._edges:
            raise HypergraphError(f"duplicate hyperedge name: {edge.name!r}")
        self._edges[edge.name] = edge
        for vertex in edge.vertices:
            self._incidence.setdefault(vertex, set()).add(edge.name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> FrozenSet[str]:
        """All vertices (variables) of the hypergraph."""
        return frozenset(self._incidence)

    @property
    def edges(self) -> Tuple[Hyperedge, ...]:
        """All hyperedges, in insertion order."""
        return tuple(self._edges.values())

    @property
    def edge_names(self) -> Tuple[str, ...]:
        return tuple(self._edges)

    def edge(self, name: str) -> Hyperedge:
        """Look up a hyperedge by name."""
        try:
            return self._edges[name]
        except KeyError:
            raise HypergraphError(f"no hyperedge named {name!r}") from None

    def has_edge(self, name: str) -> bool:
        return name in self._edges

    def has_vertex(self, vertex: str) -> bool:
        return vertex in self._incidence

    def edges_with_vertex(self, vertex: str) -> Tuple[Hyperedge, ...]:
        """All hyperedges incident to ``vertex``."""
        try:
            names = self._incidence[vertex]
        except KeyError:
            raise HypergraphError(f"no vertex named {vertex!r}") from None
        return tuple(self._edges[name] for name in sorted(names))

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Hyperedge]:
        return iter(self._edges.values())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Hyperedge):
            return item.name in self._edges
        if isinstance(item, str):
            return item in self._edges
        return False

    def __repr__(self) -> str:
        parts = ", ".join(repr(edge) for edge in self._edges.values())
        return f"Hypergraph({parts})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        if set(self._edges) != set(other._edges):
            return False
        return all(
            self._edges[name].vertices == other._edges[name].vertices
            for name in self._edges
        ) and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(
            frozenset((name, edge.vertices) for name, edge in self._edges.items())
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def variables_of(self, edge_names: Iterable[str]) -> FrozenSet[str]:
        """Union of the vertex sets of the named edges (``var(λ)`` in the paper)."""
        result: Set[str] = set()
        for name in edge_names:
            result |= self.edge(name).vertices
        return frozenset(result)

    def induced(self, edge_names: Iterable[str]) -> "Hypergraph":
        """The sub-hypergraph containing exactly the named edges."""
        return Hypergraph(self.edge(name) for name in edge_names)

    def restrict_vertices(self, keep: Iterable[str]) -> "Hypergraph":
        """Project every edge onto ``keep``, dropping edges that become empty.

        Edge names are preserved; useful for reasoning about a component
        after a separator's vertices have been removed.
        """
        keep_set = frozenset(keep)
        kept_edges: List[Hyperedge] = []
        for edge in self._edges.values():
            reduced = edge.vertices & keep_set
            if reduced:
                kept_edges.append(Hyperedge(edge.name, reduced))
        return Hypergraph(kept_edges)

    def covering_edges(self, vertices: Iterable[str]) -> Tuple[Hyperedge, ...]:
        """All edges whose vertex set is a superset of ``vertices``."""
        target = frozenset(vertices)
        return tuple(
            edge for edge in self._edges.values() if target <= edge.vertices
        )

    def isolated_vertices(self) -> FrozenSet[str]:
        """Vertices contained in no hyperedge (only possible via extra_vertices)."""
        return frozenset(v for v, names in self._incidence.items() if not names)

    def degree(self, vertex: str) -> int:
        """Number of hyperedges incident to ``vertex``."""
        if vertex not in self._incidence:
            raise HypergraphError(f"no vertex named {vertex!r}")
        return len(self._incidence[vertex])

    def copy(self) -> "Hypergraph":
        return Hypergraph(self.edges, extra_vertices=self.isolated_vertices())


def edge_subset_variables(edges: Iterable[Hyperedge]) -> FrozenSet[str]:
    """Union of the vertex sets of ``edges`` — ``var(·)`` over edge objects."""
    result: Set[str] = set()
    for edge in edges:
        result |= edge.vertices
    return frozenset(result)

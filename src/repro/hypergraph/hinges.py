"""Hinge decompositions (Gyssens–Jeavons–Cohen [8] in the paper's intro).

A *hinge tree* partitions the hyperedges into overlapping blocks (hinges):
adjacent blocks share exactly one hyperedge, and each block communicates
with the rest of the hypergraph only through single edges.  The **degree of
cyclicity** is the size of the largest hinge — evaluation cost is bounded
by joining each hinge's edges, so smaller is better.

Construction follows the GJC splitting procedure: starting from the trivial
hinge (all edges), repeatedly split a block N at an edge e ∈ N whenever the
e-relative components of N∖{e} are a *proper* refinement — each component Γ
becomes a child block Γ∪{e}, all sharing the hinge edge e.  When no block
splits, every block is a hinge and the tree is a hinge tree.

The interest for the paper: acyclic hypergraphs have degree ≤ 2, but a
simple n-cycle is a single unsplittable hinge of size n — hinge trees do
not help exactly where hypertree decompositions (width 2) do.  That gap is
reproduced in the tests and in ``examples/structural_analysis.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import HypergraphError
from repro.hypergraph.algorithms import connected_components
from repro.hypergraph.hypergraph import Hypergraph


class HingeNode:
    """One block of a hinge tree: a set of hyperedge names."""

    __slots__ = ("edges", "children", "parent", "shared_edge")

    def __init__(self, edges: FrozenSet[str], shared_edge: Optional[str] = None):
        self.edges = edges
        self.children: List["HingeNode"] = []
        self.parent: Optional["HingeNode"] = None
        #: the hinge edge shared with the parent (None at the root)
        self.shared_edge = shared_edge

    def add_child(self, child: "HingeNode") -> None:
        child.parent = self
        self.children.append(child)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"HingeNode({sorted(self.edges)})"


class HingeTree:
    """A hinge tree of a connected hypergraph."""

    def __init__(self, root: HingeNode, hypergraph: Hypergraph):
        self.root = root
        self.hypergraph = hypergraph

    def nodes(self) -> List[HingeNode]:
        return list(self.root.walk())

    @property
    def degree_of_cyclicity(self) -> int:
        """Size of the largest hinge — GJC's cyclicity measure."""
        return max(len(node.edges) for node in self.nodes())

    def covers_all_edges(self) -> bool:
        covered: Set[str] = set()
        for node in self.nodes():
            covered |= node.edges
        return covered == set(self.hypergraph.edge_names)

    def adjacent_blocks_share_one_edge(self) -> bool:
        for node in self.nodes():
            for child in node.children:
                shared = node.edges & child.edges
                if len(shared) != 1 or child.shared_edge not in shared:
                    return False
        return True

    def render(self) -> str:
        lines: List[str] = []

        def visit(node: HingeNode, depth: int) -> None:
            via = f" (via {node.shared_edge})" if node.shared_edge else ""
            lines.append("  " * depth + "{" + ", ".join(sorted(node.edges)) + "}" + via)
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


def _try_split(
    hypergraph: Hypergraph, node: HingeNode
) -> Optional[List[HingeNode]]:
    """Split one block at some hinge edge, or None if it is a hinge."""
    if len(node.edges) <= 2:
        return None
    for pivot in sorted(node.edges):
        rest = node.edges - {pivot}
        pivot_vars = hypergraph.edge(pivot).vertices
        components = connected_components(hypergraph, rest, pivot_vars)
        # Edges fully covered by the pivot's variables form their own
        # (trivially attached) blocks.
        component_union: Set[str] = set()
        for component in components:
            component_union |= component
        covered = rest - component_union
        blocks = [frozenset(component | {pivot}) for component in components]
        blocks += [frozenset({name, pivot}) for name in sorted(covered)]
        if len(blocks) >= 2:
            return [HingeNode(block, shared_edge=pivot) for block in blocks]
    return None


def hinge_decomposition(hypergraph: Hypergraph) -> HingeTree:
    """Compute a hinge tree by repeated splitting.

    Raises:
        HypergraphError: for an empty hypergraph.
    """
    edge_names = frozenset(hypergraph.edge_names)
    if not edge_names:
        raise HypergraphError("cannot hinge-decompose an empty hypergraph")

    root = HingeNode(edge_names)
    work = [root]
    while work:
        node = work.pop()
        pieces = _try_split(hypergraph, node)
        if pieces is None:
            continue
        # The first piece replaces the node's content; the rest hang off it.
        node.edges = pieces[0].edges
        for piece in pieces[1:]:
            node.add_child(piece)
            work.append(piece)
        work.append(node)

        # Re-home children that no longer share an edge with this node.
        for child in list(node.children):
            if child.shared_edge in node.edges:
                continue
            for other in pieces[1:]:
                if child.shared_edge in other.edges:
                    node.children.remove(child)
                    other.add_child(child)
                    break
    return HingeTree(root, hypergraph)


def degree_of_cyclicity(hypergraph: Hypergraph) -> int:
    """GJC's measure: the largest hinge in a hinge tree (1 for single edges)."""
    if len(hypergraph) == 0:
        return 0
    if len(hypergraph) == 1:
        return 1
    return hinge_decomposition(hypergraph).degree_of_cyclicity

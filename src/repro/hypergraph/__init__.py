"""Hypergraph substrate.

A query hypergraph ``H(Q)`` has one vertex per query variable and one named
hyperedge per query atom (§2 of the paper).  This subpackage provides the
data structure plus the classical structural algorithms the decomposition
layer builds on: GYO reduction and acyclicity testing, connected components
relative to a separator, join-tree construction for acyclic hypergraphs, and
generators for the structured families used in the experiments.
"""

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.hypergraph.algorithms import (
    connected_components,
    gyo_reduction,
    is_acyclic,
    primal_graph,
    vertex_connected_components,
)
from repro.hypergraph.jointree import JoinTreeNode, build_join_forest, build_join_tree
from repro.hypergraph.biconnected import (
    biconnected_components,
    biconnected_width,
    block_cut_tree,
    primal_biconnected_components,
)
from repro.hypergraph.dot import (
    decomposition_to_dot,
    hypergraph_to_dot,
    join_tree_to_dot,
)
from repro.hypergraph.hinges import (
    HingeTree,
    degree_of_cyclicity,
    hinge_decomposition,
)
from repro.hypergraph.treedecomp import (
    TreeDecomposition,
    structural_summary,
    tree_decomposition_min_fill,
    treewidth_min_fill,
)
from repro.hypergraph.generators import (
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    line_hypergraph,
    random_hypergraph,
)

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "connected_components",
    "gyo_reduction",
    "is_acyclic",
    "primal_graph",
    "vertex_connected_components",
    "biconnected_components",
    "biconnected_width",
    "block_cut_tree",
    "primal_biconnected_components",
    "decomposition_to_dot",
    "hypergraph_to_dot",
    "join_tree_to_dot",
    "HingeTree",
    "degree_of_cyclicity",
    "hinge_decomposition",
    "TreeDecomposition",
    "structural_summary",
    "tree_decomposition_min_fill",
    "treewidth_min_fill",
    "JoinTreeNode",
    "build_join_forest",
    "build_join_tree",
    "clique_hypergraph",
    "cycle_hypergraph",
    "grid_hypergraph",
    "line_hypergraph",
    "random_hypergraph",
]

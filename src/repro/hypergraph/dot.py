"""Graphviz DOT export for hypergraphs and decompositions.

The paper's Figure 1 draws H(Q5) as a hypergraph diagram and Figures 2/3
draw decomposition trees; these exporters produce the same pictures for any
query.  Hypergraphs use the standard bipartite convention (variable nodes ∘,
edge nodes ▭, incidence arcs); decompositions are rendered as trees with
χ/λ labels per node.  Output renders with ``dot -Tsvg``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hypergraph.hypergraph import Hypergraph


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def hypergraph_to_dot(
    hypergraph: Hypergraph,
    name: str = "H",
    highlight_vertices: Optional[set] = None,
) -> str:
    """Bipartite incidence drawing of a hypergraph.

    Args:
        highlight_vertices: optionally emphasized variables (e.g. out(Q)).
    """
    highlight = highlight_vertices or set()
    lines: List[str] = [f"graph {_quote(name)} {{"]
    lines.append("  layout=neato; overlap=false; splines=true;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    for vertex in sorted(hypergraph.vertices):
        style = ', style=filled, fillcolor="#ffd27f"' if vertex in highlight else ""
        lines.append(
            f"  {_quote('v:' + vertex)} [label={_quote(vertex)}, shape=ellipse{style}];"
        )
    for edge in hypergraph:
        lines.append(
            f"  {_quote('e:' + edge.name)} "
            f"[label={_quote(edge.name)}, shape=box, style=filled, fillcolor=\"#d8e8ff\"];"
        )
        for vertex in sorted(edge.vertices):
            lines.append(f"  {_quote('e:' + edge.name)} -- {_quote('v:' + vertex)};")
    lines.append("}")
    return "\n".join(lines)


def decomposition_to_dot(decomposition, name: str = "HD") -> str:
    """Tree drawing of a hypertree decomposition with χ/λ labels.

    Accepts a :class:`repro.core.hypertree.Hypertree` (duck-typed: needs
    ``root`` with ``walk()``, ``chi``, ``lam``, ``children``).
    """
    lines: List[str] = [f"digraph {_quote(name)} {{"]
    lines.append('  node [fontname="Helvetica", fontsize=10, shape=box];')
    for node in decomposition.root.walk():
        lam = ", ".join(node.lam) if node.lam else "∅"
        chi = ", ".join(sorted(node.chi))
        label = f"λ: {{{lam}}}\\nχ: {{{chi}}}"
        guard_note = ""
        if getattr(node, "guards", None):
            removed = ", ".join(sorted(node.guards))
            guard_note = f"\\n(removed: {removed})"
        lines.append(f"  n{node.node_id} [label={_quote(label + guard_note)}];")
    for node in decomposition.root.walk():
        guard_ids = {id(child) for child in getattr(node, "guards", {}).values()}
        for child in node.children:
            style = ' [style=bold, color="#cc5500"]' if id(child) in guard_ids else ""
            lines.append(f"  n{node.node_id} -> n{child.node_id}{style};")
    lines.append("}")
    return "\n".join(lines)


def join_tree_to_dot(root, name: str = "JT") -> str:
    """Tree drawing of a join tree (:class:`repro.hypergraph.JoinTreeNode`)."""
    lines: List[str] = [f"digraph {_quote(name)} {{"]
    lines.append('  node [fontname="Helvetica", fontsize=10, shape=box];')
    counter = iter(range(10_000_000))
    ids = {}
    for node in root.walk():
        ids[id(node)] = next(counter)
        label = f"{node.edge.name}({', '.join(sorted(node.edge.vertices))})"
        lines.append(f"  j{ids[id(node)]} [label={_quote(label)}];")
    for node in root.walk():
        for child in node.children:
            lines.append(f"  j{ids[id(node)]} -> j{ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)

"""Fig. 8 — TPC-H Q5/Q8 across database sizes.

Paper result: the purely structural q-HD plan tracks (and beats) CommDB
with statistics across 200–1000 MB, while CommDB without its standard
optimizer grows much faster and becomes infeasible.
"""

import pytest

from repro.bench.experiments import run_fig8
from repro.bench.reporting import render_series_table

from .conftest import run_once


@pytest.mark.parametrize("query", ["q5", "q8"])
def test_fig8(benchmark, query):
    result = run_once(benchmark, run_fig8, query, scale="quick")
    assert result.consistent_answers()
    print()
    print(render_series_table(result, point_label="size_mb"))

    sizes = result.points()
    for size in sizes:
        stats = result.record_for("commdb+stats", size)
        no_opt = result.record_for("commdb-no-opt", size)
        qhd = result.record_for("q-hd", size)
        # q-HD beats the stats-driven engine (the paper's Fig. 8 ordering).
        if stats.finished and qhd.finished:
            assert qhd.work < stats.work
        # The optimizer-disabled baseline is always the worst.
        if no_opt.finished and stats.finished:
            assert no_opt.work > stats.work

    # The no-optimizer baseline degrades superlinearly: its ratio to the
    # stats plan grows with database size (memory-pressure spilling).
    first, last = sizes[0], sizes[-1]
    no_opt_first = result.record_for("commdb-no-opt", first)
    no_opt_last = result.record_for("commdb-no-opt", last)
    stats_first = result.record_for("commdb+stats", first)
    stats_last = result.record_for("commdb+stats", last)
    if no_opt_last.finished:
        ratio_first = no_opt_first.work / stats_first.work
        ratio_last = no_opt_last.work / stats_last.work
        assert ratio_last > ratio_first

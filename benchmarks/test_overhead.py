"""§6.1 — optimization overhead: ANALYZE vs structural decomposition.

Paper result: gathering statistics costs ~800 s on 1 GB and grows with the
database, while building the structural plan takes ~1.5 s on average and is
independent of database size.
"""

from repro.bench.experiments import run_overhead
from repro.bench.reporting import render_series_table

from .conftest import run_once


def test_overhead(benchmark):
    result = run_once(benchmark, run_overhead, scale="quick")
    print()
    print(render_series_table(result, metric="elapsed_seconds", point_label="size_mb"))

    analyze = result.series("analyze")
    decompose = result.series("decompose")

    # ANALYZE work grows linearly with the database size.
    assert analyze[-1].work > 3 * analyze[0].work

    # Decomposition cost is independent of database size: the largest
    # database's decomposition is no more than a few times the smallest's
    # (pure wall-clock noise), while ANALYZE grows ~5×.
    times = [record.elapsed_seconds for record in decompose]
    assert max(times) < max(10 * min(times), 0.5)

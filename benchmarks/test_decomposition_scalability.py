"""Decomposition-time scalability — the paper's "~1.5 s, size-independent".

§6.1: "building a structure-based query plan takes an average time of 1.5
seconds — not affected by the database size".  Two claims to check:

* cost-k-decomp's runtime depends on the *query* (atoms, width bound), not
  on the data volume;
* it stays interactive (well under a second here — our queries are the
  paper's sizes, our hardware two decades newer).
"""

import time

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5, query_q8

from .conftest import run_once


def test_decomposition_time_grows_with_query_not_data(benchmark):
    def run():
        # (a) same query, growing data: decomposition time flat.
        data_times = []
        for size in (200, 600, 1000):
            db = generate_tpch_database(size_mb=size, seed=1, analyze=True)
            plan = HybridOptimizer(db, max_width=3).optimize(query_q5())
            data_times.append(plan.decomposition_seconds)

        # (b) same data scale, growing query: decomposition time grows.
        query_times = []
        for n_atoms in (4, 8, 12):
            config = SyntheticConfig(n_atoms=n_atoms, cyclic=True, seed=1)
            db = generate_synthetic_database(config)
            db.analyze()
            plan = HybridOptimizer(db, max_width=3).optimize(
                synthetic_query_sql(config)
            )
            query_times.append(plan.decomposition_seconds)
        return data_times, query_times

    data_times, query_times = run_once(benchmark, run)
    print()
    print(f"  vs data size (Q5):   {['%.1f ms' % (t * 1000) for t in data_times]}")
    print(f"  vs query size:       {['%.1f ms' % (t * 1000) for t in query_times]}")

    # Size-independence: the largest database's decomposition is within
    # noise of the smallest's (no data term at all in the search).
    assert max(data_times) < max(20 * min(data_times), 0.25)
    # Interactivity: every decomposition finishes well within a second.
    assert max(data_times + query_times) < 1.0


def test_q8_decomposition_subsecond(benchmark):
    def run():
        db = generate_tpch_database(size_mb=1000, seed=1, analyze=True)
        started = time.perf_counter()
        plan = HybridOptimizer(db, max_width=3).optimize(query_q8())
        return time.perf_counter() - started, plan.width

    elapsed, width = run_once(benchmark, run)
    print(f"\n  Q8 (8 relations): {elapsed * 1000:.1f} ms, width {width}")
    assert elapsed < 1.0

"""Intra-query parallel q-HD evaluation vs serial on the chain workload.

The paper's chain query (10 cyclic atoms) is the workload where the serial
evaluator's join+project folds dominate; the parallel executor's fused
batch kernels both *do less work* (eager two-sided projection dedup — the
``WorkMeter`` totals drop, honestly) and overlap independent subtree
materializations.  The acceptance bar for the executor is ≥ 1.5× wall
clock on this workload (recorded by ``scripts/bench_record.py`` into
``BENCH_parallel.json``); this benchmark asserts the same comparison with
a safety margin against timer noise, plus exact row/order parity.
"""

from __future__ import annotations

import time

from repro.core.optimizer import HybridOptimizer
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)

from .conftest import run_once

CHAIN = SyntheticConfig(
    n_atoms=10, cardinality=1000, selectivity=30, cyclic=True, seed=7
)
REPEATS = 3
PARALLEL_WORKERS = 4


def _measure(plan, workers: int):
    """Best-of-``REPEATS`` wall clock plus the (deterministic) work total."""
    best = None
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = plan.execute(parallel_workers=workers)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _compare():
    db = generate_synthetic_database(CHAIN)
    plan = HybridOptimizer(db, max_width=2, use_statistics=False).optimize(
        synthetic_query_sql(CHAIN), name="chain"
    )
    serial_wall, serial = _measure(plan, 0)
    parallel_wall, parallel = _measure(plan, PARALLEL_WORKERS)
    return {
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "serial_work": serial.work,
        "parallel_work": parallel.work,
        "serial": serial,
        "parallel": parallel,
    }


def test_parallel_speedup_chain(benchmark):
    stats = run_once(benchmark, _compare)
    speedup = stats["serial_wall"] / stats["parallel_wall"]
    print()
    print(
        f"chain n={CHAIN.n_atoms} card={CHAIN.cardinality}: "
        f"serial {stats['serial_wall'] * 1e3:.0f}ms / {stats['serial_work']} units, "
        f"parallel({PARALLEL_WORKERS}) {stats['parallel_wall'] * 1e3:.0f}ms / "
        f"{stats['parallel_work']} units, speedup {speedup:.2f}x"
    )

    # Determinism: identical rows in identical order, any worker count.
    assert stats["parallel"].relation.tuples == stats["serial"].relation.tuples

    # The fused kernels genuinely skip work (projection-duplicate pairs are
    # never enumerated), so the machine-independent totals must drop too.
    assert stats["parallel_work"] < stats["serial_work"]

    # Wall-clock bar with margin for shared-runner noise; the recorded
    # BENCH_parallel.json figure is the strict ≥ 1.5× measurement.
    assert speedup >= 1.2

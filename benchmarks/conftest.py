"""Benchmark configuration.

Each benchmark reproduces one figure of the paper by running the
corresponding experiment sweep once (``benchmark.pedantic`` with a single
round — the sweep itself already aggregates many measured executions) and
printing the series table the figure plots.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Width-bound sensitivity: the paper's "typically k = 4 is enough".

Sweeps the width bound k on TPC-H Q5 and on chain queries, recording
decomposition time, achieved width, and evaluation work.  Two expectations
from §4.1:

* below the query's q-hypertree width, the search fails fast;
* beyond it, larger k does not hurt plan quality (the min-cost search
  simply keeps choosing the same cheap decompositions), while search time
  grows — which is why a small fixed k is the right engineering choice.
"""

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.errors import DecompositionNotFound
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5

from .conftest import run_once


def test_width_sensitivity_q5(benchmark):
    def run():
        db = generate_tpch_database(size_mb=200, seed=3, analyze=True)
        rows = []
        for k in (1, 2, 3, 4, 5):
            try:
                plan = HybridOptimizer(db, max_width=k).optimize(query_q5())
            except DecompositionNotFound:
                rows.append((k, None, None, None))
                continue
            result = plan.execute()
            rows.append(
                (k, plan.width, plan.decomposition_seconds, result.work)
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'k':>3} {'width':>6} {'decomp(ms)':>11} {'eval work':>10}")
    for k, width, seconds, work in rows:
        if width is None:
            print(f"{k:>3} {'—':>6} {'failure':>11} {'—':>10}")
        else:
            print(f"{k:>3} {width:>6} {seconds * 1000:>11.1f} {work:>10}")

    by_k = {row[0]: row for row in rows}
    # k = 1 must fail: Q5 is cyclic with q-hypertree width 2.
    assert by_k[1][1] is None
    # k = 2 succeeds; larger k never worsens evaluation work by much.
    assert by_k[2][1] is not None
    works = [row[3] for row in rows if row[3] is not None]
    assert max(works) <= min(works) * 3


def test_width_sensitivity_chain(benchmark):
    def run():
        config = SyntheticConfig(
            n_atoms=8, cardinality=450, selectivity=60, cyclic=True, seed=8
        )
        db = generate_synthetic_database(config)
        db.analyze()
        sql = synthetic_query_sql(config)
        rows = []
        for k in (1, 2, 3, 4):
            try:
                plan = HybridOptimizer(db, max_width=k).optimize(sql)
            except DecompositionNotFound:
                rows.append((k, None, None))
                continue
            rows.append((k, plan.width, plan.execute().work))
        return rows

    rows = run_once(benchmark, run)
    print()
    for k, width, work in rows:
        print(f"  k={k}: width={width}, work={work}")
    # Chains have q-hypertree width 2: k=1 fails, k≥2 succeeds.
    assert rows[0][1] is None
    assert all(width is not None for _k, width, _w in rows[1:])

"""Ablation benches for the design choices DESIGN.md calls out.

Not figures of the paper, but measurements of the choices its system makes:

* **single-pass vs classic** — the q-hypertree evaluator (one bottom-up
  pass, feature (a) of Definition 2) against the classical S₂′+S₂″ pipeline
  (materialize node relations, then 3-phase Yannakakis);
* **bushy vs left-deep vs GEQO** — the engine's search spaces on a TPC-H
  join (why the CommDB profile beats the PostgreSQL profile);
* **aggregate cost term** — the paper's future-work extension: charging
  the estimated answer size at the root.
"""

import pytest

from repro.core.evaluator import evaluate_hd_classic, evaluate_qhd
from repro.core.optimizer import HybridOptimizer
from repro.core.qhd import q_hypertree_decomp
from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.geqo import GeqoOptimizer
from repro.engine.optimizer import JoinOrderOptimizer
from repro.engine.scans import atom_relations
from repro.metering import WorkMeter
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5

from .conftest import run_once


def test_single_pass_vs_classic_evaluation(benchmark):
    """Feature (a): the single bottom-up pass must not lose to the classic
    three-phase pipeline, and the answers must match."""

    def run():
        rows = []
        for n_atoms in (4, 6, 8, 10):
            config = SyntheticConfig(
                n_atoms=n_atoms, cardinality=450, selectivity=60,
                cyclic=True, seed=n_atoms,
            )
            db = generate_synthetic_database(config)
            db.analyze()
            sql = synthetic_query_sql(config)
            plan = HybridOptimizer(db, max_width=3).optimize(sql)
            translation = plan.translation
            rels = atom_relations(translation.query, db, translation)

            m_single, m_classic = WorkMeter(), WorkMeter()
            single = evaluate_qhd(
                plan.decomposition, translation.query, rels, meter=m_single
            )
            classic = evaluate_hd_classic(
                plan.decomposition, translation.query, rels, meter=m_classic
            )
            assert single.same_content(classic)
            rows.append((n_atoms, m_single.total, m_classic.total))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"{'atoms':>6} {'single-pass':>12} {'classic-3-phase':>16}")
    for n_atoms, single, classic in rows:
        print(f"{n_atoms:>6} {single:>12} {classic:>16}")
    # The single pass wins on aggregate across the sweep.
    assert sum(s for _, s, _ in rows) <= sum(c for _, _, c in rows)


def test_search_space_ablation(benchmark):
    """Estimated plan cost across the engine's three planners on Q5."""

    def run():
        db = generate_tpch_database(size_mb=400, seed=1, analyze=True)
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS

        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        translation = dbms.translate(query_q5())
        context = EstimationContext.build(translation, db, True)
        estimator = CardinalityEstimator(context)

        results = {}
        for label, planner in (
            ("bushy", JoinOrderOptimizer(translation, estimator, "bushy")),
            ("leftdeep", JoinOrderOptimizer(translation, estimator, "leftdeep")),
            ("geqo", GeqoOptimizer(translation, estimator, seed=0)),
        ):
            plan = planner.optimize()
            meter = WorkMeter()
            base = atom_relations(translation.query, db, translation, meter)
            joined = dbms._execute_plan(plan, base, meter)
            results[label] = meter.total
        return results

    results = run_once(benchmark, run)
    print()
    for label, work in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {label:<10} {work} work units")
    # Bushy search never loses to left-deep; GEQO is heuristic but sane.
    assert results["bushy"] <= results["leftdeep"] * 1.01
    assert results["geqo"] <= results["leftdeep"] * 10


def test_aggregate_cost_term_ablation(benchmark):
    """The future-work aggregate term: same answers, bounded plan change."""

    def run():
        db = generate_tpch_database(size_mb=200, seed=2, analyze=True)
        plain = HybridOptimizer(db, max_width=3).optimize(query_q5())
        weighted = HybridOptimizer(
            db, max_width=3, include_aggregates=True, aggregate_weight=5.0
        ).optimize(query_q5())
        r_plain = plain.execute()
        r_weighted = weighted.execute()
        assert r_plain.relation.same_content(r_weighted.relation)
        return r_plain.work, r_weighted.work

    plain_work, weighted_work = run_once(benchmark, run)
    print(f"\n  plain: {plain_work}, with aggregate term: {weighted_work}")
    # The weighted plan must stay within a small factor of the plain plan.
    assert weighted_work <= plain_work * 2

"""Serving-layer acceptance benchmarks: plan-cache amortization + parity.

Two claims, per the serving layer's design goals:

1. **Amortization** — over a repeated-template workload (same shapes,
   varying constants), a warm plan cache reduces total *planning* work by
   at least 5× versus replanning every query (cold = cache disabled).
2. **Parity** — an 8-worker concurrent :class:`QueryService` over a mixed
   TPC-H/synthetic workload returns answers byte-identical to serial
   execution of the same queries on a stock engine.
"""

from repro.bench.reporting import render_series_table
from repro.bench.serving import (
    instantiate,
    run_serving_throughput,
    serving_workload,
)
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.service.server import QueryService

from .conftest import run_once


def test_warm_cache_amortizes_planning_work(benchmark):
    result = run_once(benchmark, run_serving_throughput, scale="quick")
    print()
    print(render_series_table(result, metric="work", point_label="reps"))

    cold = result.series("cold")[-1]
    warm = result.series("warm")[-1]
    assert cold.finished and warm.finished
    # Same workload, same answers.
    assert cold.answer_rows == warm.answer_rows
    # The cold service plans every query; the warm one plans one per
    # template (single-flight coalescing makes this exact, not racy).
    assert warm.extra["plans_built"] == 4
    assert cold.extra["plans_built"] == warm.extra["queries"]
    # The acceptance bar: ≥5× less planning work with a warm cache.
    assert warm.work > 0
    assert warm.work * 5 <= cold.work


def test_concurrent_service_matches_serial_execution(benchmark):
    database, templates = serving_workload("quick", seed=11)
    queries = instantiate(templates, repetitions=4)

    serial_engine = SimulatedDBMS(database, COMMDB_PROFILE)
    serial = [serial_engine.run_sql(sql) for sql in queries]

    def concurrent_run():
        with QueryService(
            SimulatedDBMS(database, COMMDB_PROFILE),
            max_width=3,
            workers=8,
            queue_capacity=64,
        ) as service:
            return service.run_all(queries)

    concurrent = run_once(benchmark, concurrent_run)

    assert len(concurrent) == len(serial) == len(queries)
    for mine, theirs in zip(concurrent, serial):
        assert mine.finished and theirs.finished
        # Byte-identical answers: same attributes, same tuple multiset.
        assert mine.relation.attributes == theirs.relation.attributes
        assert sorted(map(repr, mine.relation.tuples)) == sorted(
            map(repr, theirs.relation.tuples)
        )

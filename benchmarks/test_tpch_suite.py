"""The full TPC-H suite across systems — the §6.1 comparison, widened.

Every implemented TPC-H query, every system, every answer cross-validated.
The structural plan should win or tie on the join-heavy queries and never
lose catastrophically on the simple ones.
"""

from repro.bench.tpch_suite import SYSTEMS, render_suite, run_tpch_suite

from .conftest import run_once


def test_tpch_suite(benchmark):
    rows = run_once(benchmark, run_tpch_suite, size_mb=200, seed=1)
    print()
    print(render_suite(rows))

    by_query = {row.query: row for row in rows}
    assert set(by_query) == {"q3", "q5", "q7", "q8", "q9", "q10"}

    # Every system that finished agrees on every answer.
    assert all(row.agree for row in rows)

    # All four systems finish every query within the budget.
    for row in rows:
        for system in SYSTEMS:
            assert row.work.get(system) is not None or system == "commdb-no-opt"

    # The paper's headline: on the cyclic / join-heavy queries (Q5, Q8),
    # the structural plan beats the statistics-driven engine.
    for query in ("q5", "q8"):
        row = by_query[query]
        assert row.work["q-hd"] < row.work["commdb+stats"]

    # And it never loses by more than 2× anywhere.
    for row in rows:
        if row.work["q-hd"] is not None and row.work["commdb+stats"] is not None:
            assert row.work["q-hd"] <= row.work["commdb+stats"] * 2

"""Fig. 10 — impact of Procedure Optimize on chain queries.

Paper result: exploiting feature (b) of q-hypertree decompositions —
deleting λ atoms whose bounding role a child subsumes — visibly reduces
evaluation time on the chain workload, increasingly so with query length.
"""

from repro.bench.experiments import run_fig10
from repro.bench.reporting import render_series_table

from .conftest import run_once


def test_fig10(benchmark):
    result = run_once(benchmark, run_fig10, scale="quick")
    assert result.consistent_answers()
    print()
    print(render_series_table(result, point_label="atoms"))

    for point in result.points():
        with_opt = result.record_for("q-hd+optimize", point)
        without = result.record_for("q-hd-no-optimize", point)
        if with_opt.finished and without.finished:
            assert with_opt.work <= without.work

    # At 10 atoms the savings are substantial (the paper's growing gap).
    with_opt = result.record_for("q-hd+optimize", 10)
    without = result.record_for("q-hd-no-optimize", 10)
    if with_opt.finished and without.finished:
        assert with_opt.work < without.work * 0.8

    # Optimize actually removed λ occurrences on the longer chains.
    assert any(
        record.extra.get("removed", 0) > 0
        for record in result.series("q-hd+optimize")
    )

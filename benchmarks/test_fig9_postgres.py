"""Fig. 9 — stock PostgreSQL vs the tight structural coupling.

Paper result: with the structural optimizer integrated, PostgreSQL scales
to 10 body atoms on both acyclic and chain queries, while the stock
optimizer's time explodes (80 s at 6 atoms in the paper's setup).
"""

from repro.bench.experiments import run_fig9
from repro.bench.reporting import render_series_table, render_speedup

from .conftest import run_once


def test_fig9(benchmark):
    result = run_once(benchmark, run_fig9, scale="quick")
    assert result.consistent_answers()
    print()
    print(render_series_table(result, point_label="atoms"))
    print()
    print(render_speedup(result, "postgres-acyclic", "postgres+q-hd-acyclic"))

    for kind in ("acyclic", "chain"):
        stock = result.record_for(f"postgres-{kind}", 10)
        coupled = result.record_for(f"postgres+q-hd-{kind}", 10)
        # The coupling wins at 10 atoms on both families...
        if stock.finished and coupled.finished:
            assert coupled.work < stock.work
        # ...and its advantage grows with query length.
        stock_small = result.record_for(f"postgres-{kind}", 4)
        coupled_small = result.record_for(f"postgres+q-hd-{kind}", 4)
        if all(r.finished for r in (stock, coupled, stock_small, coupled_small)):
            assert (stock.work / coupled.work) > (
                stock_small.work / coupled_small.work
            )

"""Fig. 7 — CommDB vs q-HD on synthetic acyclic/chain queries.

Paper result: q-HD stays at "a few seconds" across 2–10 atoms while
CommDB's execution time grows steeply and stops terminating at 10 atoms;
the gap widens as selectivity drops (a) / cardinality grows (c).
"""

import pytest

from repro.bench.experiments import run_fig7
from repro.bench.reporting import render_series_table

from .conftest import run_once


def _check(result):
    """Shape assertions: q-HD must dominate CommDB at the largest point."""
    assert result.consistent_answers()
    last = max(p for p in result.points())
    for system in result.systems():
        if not system.startswith("commdb"):
            continue
        partner = system.replace("commdb", "q-hd")
        commdb = result.record_for(system, last)
        qhd = result.record_for(partner, last)
        if commdb is None or qhd is None:
            continue
        if commdb.finished and qhd.finished:
            # At 10 atoms the structural method must not lose badly; on
            # the hardest sweeps the baseline simply DNFs.
            assert qhd.work <= commdb.work * 2
    print()
    print(render_series_table(result, point_label="atoms"))


@pytest.mark.parametrize("variant", ["a", "b", "c", "d"])
def test_fig7(benchmark, variant):
    result = run_once(benchmark, run_fig7, variant, scale="quick")
    _check(result)


def test_fig7a_qhd_survives_where_commdb_dnfs(benchmark):
    """The headline claim: at 10 atoms / selectivity 30, CommDB exceeds the
    budget while the q-HD plan finishes."""
    result = run_once(benchmark, run_fig7, "a", scale="quick")
    commdb = result.record_for("commdb-sel30", 10)
    qhd = result.record_for("q-hd-sel30", 10)
    assert not commdb.finished
    assert qhd.finished

"""Setup shim: enables `python setup.py develop` in offline environments
where pip cannot build PEP 660 editable wheels (no `wheel` package).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()

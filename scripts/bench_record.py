"""Record a benchmark into its ``BENCH_*.json`` perf-trajectory artifact.

Two benchmarks share this recorder (``--benchmark``):

* ``parallel`` (default) — the chain and star workloads serial vs
  parallel (2 and 4 workers), with exact row/order parity verified;
  writes ``BENCH_parallel.json`` and gates on the 1.5× chain speedup:

      python scripts/bench_record.py

* ``serving`` — mixed multi-tenant traffic over a shard cluster vs one
  single-process baseline (p50/p99 client latency, saturation, per-shard
  plan-cache hit rates, byte-identical-answer parity); writes
  ``BENCH_serving.json`` and gates on parity + per-shard hit rate ≥
  baseline + a clean cross-shard drain:

      python scripts/bench_record.py --benchmark serving --shards 4
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.record import stamp_record, validate_record
from repro.core.optimizer import HybridOptimizer
from repro.workloads.synthetic import (
    StarConfig,
    SyntheticConfig,
    generate_star_database,
    generate_synthetic_database,
    star_query_sql,
    synthetic_query_sql,
)

CHAIN = SyntheticConfig(
    n_atoms=10, cardinality=1000, selectivity=30, cyclic=True, seed=7
)
STAR = StarConfig(n_dimensions=6, fact_rows=2000, dimension_rows=200, seed=5)

WORKLOADS = [
    ("chain", generate_synthetic_database, CHAIN, synthetic_query_sql, 2),
    ("star", generate_star_database, STAR, star_query_sql, 3),
]

WORKER_COUNTS = (2, 4)


def measure(plan, workers: int, repeats: int):
    walls = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = plan.execute(parallel_workers=workers)
        walls.append(time.perf_counter() - started)
    return {
        "wall_seconds": statistics.median(walls),
        "wall_seconds_min": min(walls),
        "work_units": result.work,
        "rows": len(result.relation),
    }, result


def run(repeats: int) -> dict:
    report = {
        "benchmark": "parallel-qhd-evaluation",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "workloads": {},
    }
    for name, generate, config, to_sql, width in WORKLOADS:
        db = generate(config)
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(
            to_sql(config), name=name
        )
        serial_stats, serial = measure(plan, 0, repeats)
        entry = {"config": str(config), "max_width": width, "serial": serial_stats}
        for workers in WORKER_COUNTS:
            parallel_stats, parallel = measure(plan, workers, repeats)
            identical = (
                parallel.relation.attributes == serial.relation.attributes
                and parallel.relation.tuples == serial.relation.tuples
            )
            parallel_stats["identical_to_serial"] = identical
            parallel_stats["speedup"] = round(
                serial_stats["wall_seconds"] / parallel_stats["wall_seconds"], 3
            )
            entry[f"parallel_{workers}"] = parallel_stats
            if not identical:
                raise SystemExit(
                    f"PARITY FAILURE: {name} with {workers} workers "
                    "returned different rows than serial"
                )
        report["workloads"][name] = entry
    return report


def run_serving(args: argparse.Namespace) -> dict:
    from repro.bench.serving import run_sharded_serving

    report = run_sharded_serving(
        scale=args.scale,
        shards=args.shards,
        workers=args.workers,
        repetitions=args.repetitions,
        kill_rate=args.kill_rate,
        supervise=args.supervise or args.kill_rate > 0,
    )
    report["python"] = platform.python_version()
    report["machine"] = platform.machine()
    return report


def write_report(report: dict, output: Path, root: Path) -> None:
    """Stamp provenance and write the record — refusing invalid schemas.

    Every artifact this script produces carries the git SHA and an
    ISO-8601 UTC timestamp, and is schema-validated *before* the write so
    a malformed record never lands on the perf trajectory.
    """
    stamp_record(report, cwd=str(root))
    problems = validate_record(report)
    if problems:
        raise SystemExit(
            "refusing to write invalid bench record:\n"
            + "\n".join(f"  - {problem}" for problem in problems)
        )
    output.write_text(json.dumps(report, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmark",
        choices=["parallel", "serving"],
        default="parallel",
        help="which benchmark to run and record",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report "
        "(default: BENCH_<benchmark>.json at the repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed runs per configuration (parallel)"
    )
    parser.add_argument(
        "--scale", choices=["quick", "full"], default="quick", help="(serving)"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard processes (serving)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="threads per shard (serving)"
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=0,
        help="repetitions per tenant template, 0 = scale default (serving)",
    )
    parser.add_argument(
        "--kill-rate",
        type=float,
        default=0.0,
        help="SIGKILL a random live shard with this probability per tick "
        "while the workload runs; records availability and recovery "
        "percentiles (serving)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run the shard cluster under the self-healing supervisor "
        "(implied by --kill-rate > 0) (serving)",
    )
    args = parser.parse_args()
    root = Path(__file__).resolve().parent.parent
    output = Path(
        args.output or root / f"BENCH_{args.benchmark}.json"
    )

    if args.benchmark == "serving":
        report = run_serving(args)
        write_report(report, output, root)
        print(json.dumps(report, indent=2))
        parity = (
            report["parity"]["identical"] or not report["parity"]["checked"]
        )
        hit_rate_ok = report["hit_rate_ok"]
        drained = report["sharded"]["drained_clean"]
        print(
            f"\nparity={parity} per-shard-hit-rate>=baseline={hit_rate_ok} "
            f"drain-clean={drained}"
        )
        resilience = report.get("resilience")
        recovered = True
        if resilience is not None:
            recovered = resilience["recovered_to_full"]
            print(
                f"availability={resilience['availability']:.2%} "
                f"kills={resilience['kills']} "
                f"restarts={resilience['restarts']} "
                f"recovered-to-full={recovered}"
            )
        return 0 if parity and hit_rate_ok and drained and recovered else 1

    report = run(args.repeats)
    write_report(report, output, root)
    chain = report["workloads"]["chain"]
    speedup = chain["parallel_4"]["speedup"]
    print(json.dumps(report, indent=2))
    print(
        f"\nchain speedup at 4 workers: {speedup}x "
        f"({'meets' if speedup >= 1.5 else 'BELOW'} the 1.5x bar)"
    )
    return 0 if speedup >= 1.5 else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Differential fuzzer: random queries, every execution strategy, one oracle.

Generates random conjunctive workloads (lines, chains, stars with random
sizes, domains and filters), runs each through the quantitative engine,
the q-HD plan, the classic 3-phase evaluation and the SQL-view stack, and
verifies all answers agree.  Any disagreement prints a reproducer seed.

Run:  python scripts/fuzz_differential.py --iterations 200 --seed 0
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.evaluator import evaluate_hd_classic, evaluate_qhd
from repro.core.optimizer import HybridOptimizer
from repro.core.views import execute_view_plan
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.engine.scans import atom_relations
from repro.relational import AttributeType, Database, RelationSchema


def random_case(rng: random.Random):
    """One random workload: (database, sql, label)."""
    kind = rng.choice(["line", "chain", "star"])
    domain = rng.randint(2, 8)
    rows = rng.randint(5, 40)

    if kind in ("line", "chain"):
        n = rng.randint(2 if kind == "line" else 3, 6)
        db = Database("fuzz")
        for i in range(n):
            schema = RelationSchema.of(
                f"r{i}", {f"x{i}": AttributeType.INT, f"y{i}": AttributeType.INT}
            )
            db.create_table(
                schema,
                [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)],
            )
        conditions = [f"r{i}.y{i} = r{i + 1}.x{i + 1}" for i in range(n - 1)]
        if kind == "chain":
            conditions.append(f"r{n - 1}.y{n - 1} = r0.x0")
        if rng.random() < 0.5:
            conditions.append(f"r0.x0 <= {rng.randrange(domain)}")
        sql = (
            f"SELECT r0.x0, r1.x1 FROM {', '.join(f'r{i}' for i in range(n))} "
            f"WHERE {' AND '.join(conditions)}"
        )
        return db, sql, f"{kind}-{n}"

    d = rng.randint(2, 4)
    db = Database("fuzz")
    fact = RelationSchema.of(
        "fact",
        [("m", AttributeType.INT)] + [(f"k{i}", AttributeType.INT) for i in range(d)],
    )
    db.create_table(
        fact,
        [
            tuple([rng.randrange(50)] + [rng.randrange(domain) for _ in range(d)])
            for _ in range(rows)
        ],
    )
    for i in range(d):
        schema = RelationSchema.of(
            f"dim{i}", {f"k{i}": AttributeType.INT, f"p{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(k, rng.randrange(domain)) for k in range(domain)]
        )
    conditions = [f"fact.k{i} = dim{i}.k{i}" for i in range(d)]
    sql = (
        f"SELECT dim0.p0, fact.m FROM fact, "
        f"{', '.join(f'dim{i}' for i in range(d))} "
        f"WHERE {' AND '.join(conditions)}"
    )
    return db, sql, f"star-{d}"


def check_case(db: Database, sql: str) -> bool:
    """Run every strategy; True when all agree."""
    db.analyze()
    dbms = SimulatedDBMS(db, COMMDB_PROFILE)
    reference = dbms.run_sql(sql).relation

    plan = HybridOptimizer(db, max_width=3).optimize(sql)
    if not plan.execute().relation.same_content(reference):
        return False

    translation = plan.translation
    rels = atom_relations(translation.query, db, translation)
    single = evaluate_qhd(plan.decomposition, translation.query, rels)
    classic = evaluate_hd_classic(plan.decomposition, translation.query, rels)
    if not single.same_content(classic):
        return False

    via_views = execute_view_plan(plan.to_sql_views(), dbms).relation
    return via_views.same_content(reference)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    failures = []
    counts = {}
    for i in range(args.iterations):
        case_seed = args.seed * 1_000_003 + i
        rng = random.Random(case_seed)
        db, sql, label = random_case(rng)
        counts[label.split("-")[0]] = counts.get(label.split("-")[0], 0) + 1
        try:
            ok = check_case(db, sql)
        except Exception as exc:  # noqa: BLE001 — a fuzzer reports, not crashes
            print(f"[seed {case_seed}] {label}: EXCEPTION {exc!r}")
            failures.append(case_seed)
            continue
        if not ok:
            print(f"[seed {case_seed}] {label}: ANSWER MISMATCH\n  {sql}")
            failures.append(case_seed)

    total = args.iterations
    print(
        f"\n{total - len(failures)}/{total} cases agree "
        f"({', '.join(f'{k}: {v}' for k, v in sorted(counts.items()))})"
    )
    if failures:
        print(f"failing seeds: {failures}")
        return 1
    print("no disagreements ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())

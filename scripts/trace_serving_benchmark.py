#!/usr/bin/env python
"""Run the serving throughput benchmark under tracing and validate the spans.

CI's observability job: executes the cold-vs-warm serving benchmark with a
process-wide :class:`repro.obs.tracing.Tracer` installed, exports every span
(``serve.plan``, ``serve.execute``, ``decompose.*``, ``qhd.node``) as JSONL,
and fails (exit 1) when the tracer reports a consistency problem — a
negative span duration, a negative work-unit delta, or an unmatched
open/close under the executor pool.

Usage::

    PYTHONPATH=src python scripts/trace_serving_benchmark.py [spans.jsonl]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import render_series_table  # noqa: E402
from repro.bench.serving import run_serving_throughput  # noqa: E402
from repro.obs.tracing import tracing  # noqa: E402


def main(argv: list) -> int:
    out_path = Path(argv[1]) if len(argv) > 1 else Path("spans.jsonl")

    with tracing() as tracer:
        result = run_serving_throughput(scale="quick")

    print(render_series_table(result, metric="work", point_label="repetitions"))

    exported = tracer.export_jsonl(out_path)
    by_name: dict = {}
    for span in tracer.spans():
        by_name[span.name] = by_name.get(span.name, 0) + 1
    print(f"\nexported {exported} spans -> {out_path}")
    for name in sorted(by_name):
        print(f"  {name:<20} {by_name[name]:>6}")
    if tracer.dropped:
        print(f"  (dropped beyond retention cap: {tracer.dropped})")

    problems = tracer.validate()
    if problems:
        for problem in problems:
            print(f"TRACE PROBLEM: {problem}", file=sys.stderr)
        return 1
    expected = {"serve.plan", "serve.execute", "decompose.search", "qhd.node"}
    missing = expected - set(by_name)
    if missing:
        print(f"TRACE PROBLEM: expected span names missing: {sorted(missing)}",
              file=sys.stderr)
        return 1
    print("trace validation: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Generate docs/API.md — a public-API reference from docstrings.

Walks every module under ``repro``, lists public classes and functions
with their signatures and docstring summaries.  Run after API changes:

    python scripts/generate_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro


def summary_of(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.strip().split("\n\n")[0].replace("\n", " ").strip()
    return first


def signature_of(obj: object) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(…)"


def document_module(module) -> List[str]:
    lines: List[str] = []
    mod_summary = summary_of(module)
    lines.append(f"### `{module.__name__}`\n")
    if mod_summary:
        lines.append(mod_summary + "\n")

    members = inspect.getmembers(module)
    classes = [
        (name, obj)
        for name, obj in members
        if inspect.isclass(obj)
        and obj.__module__ == module.__name__
        and not name.startswith("_")
    ]
    functions = [
        (name, obj)
        for name, obj in members
        if inspect.isfunction(obj)
        and obj.__module__ == module.__name__
        and not name.startswith("_")
    ]

    for name, cls in sorted(classes):
        lines.append(f"- **class `{name}`** — {summary_of(cls)}")
        methods = [
            (m_name, m_obj)
            for m_name, m_obj in inspect.getmembers(cls, inspect.isfunction)
            if not m_name.startswith("_") and m_obj.__qualname__.startswith(cls.__name__)
        ]
        for m_name, m_obj in sorted(methods):
            lines.append(
                f"    - `{m_name}{signature_of(m_obj)}` — {summary_of(m_obj)}"
            )
    for name, fn in sorted(functions):
        lines.append(f"- `{name}{signature_of(fn)}` — {summary_of(fn)}")
    lines.append("")
    return lines


def main() -> int:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `scripts/generate_api_docs.py` — do not",
        "edit by hand.",
        "",
    ]
    package_path = Path(repro.__file__).parent
    module_names = sorted(
        name
        for _finder, name, _ispkg in pkgutil.walk_packages(
            [str(package_path)], prefix="repro."
        )
        if "__main__" not in name
    )
    current_package = None
    for module_name in module_names:
        module = importlib.import_module(module_name)
        package = module_name.split(".")[1] if "." in module_name else ""
        if package != current_package:
            current_package = package
            lines.append(f"## `repro.{package}`\n")
        lines.extend(document_module(module))

    output = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    output.write_text("\n".join(lines))
    print(f"wrote {output} ({len(lines)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Generate EXPERIMENTS.md by running every paper experiment.

Run:  python scripts/generate_experiments_md.py [--scale full|quick]

Each section records what the paper's figure shows and the series this
reproduction measures (work units — the machine-independent time proxy),
then a short verdict on whether the shape holds.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.export import render_markdown_table, write_csv, write_json

PAPER_NOTES = {
    "fig7a": (
        "Acyclic queries, cardinality 500, selectivity ∈ {30, 60, 90}: CommDB's "
        "execution time grows steeply with the number of body atoms and stops "
        "terminating at 10 atoms, while the q-HD driven executions take just a "
        "few seconds; lower selectivity (larger joins) widens the gap."
    ),
    "fig7b": (
        "Chain (cyclic) queries, same sweep: same picture, with the structural "
        "method's advantage appearing from ~8 atoms."
    ),
    "fig7c": (
        "Acyclic queries at selectivity 30, cardinality ∈ {500, 750, 1000}: "
        "larger relations push CommDB into non-termination earlier; q-HD stays flat."
    ),
    "fig7d": "Chain queries, cardinality sweep: as fig7c.",
    "fig8a": (
        "TPC-H Q5, 200 MB–1000 MB: q-HD (used purely structurally — statistics "
        "did not change its plan) beats CommDB with statistics at every size; "
        "CommDB without its standard optimizer grows dramatically with database "
        "size and quickly becomes infeasible."
    ),
    "fig8b": "TPC-H Q8, same sweep and same ordering of the three systems.",
    "fig9": (
        "PostgreSQL 8.3 vs PostgreSQL with the structural optimizer integrated "
        "(cardinality 450, selectivity 60): the stock optimizer takes ~80 s "
        "already at 6 acyclic atoms, while the coupled system scales nicely to "
        "10 atoms on both acyclic and chain queries."
    ),
    "fig10": (
        "Chain queries on the fig9 dataset: evaluating the q-hypertree "
        "decomposition with Procedure Optimize (feature (b): λ atoms whose "
        "bounding role a child subsumes are dropped) is increasingly faster "
        "than evaluating the unoptimized decomposition."
    ),
    "overhead": (
        "§6.1 text: gathering statistics takes ~800 s for 1 GB and grows with "
        "the database, while building a structure-based query plan takes ~1.5 s "
        "on average, independent of the database size."
    ),
}

VERDICTS = {
    "fig7a": "Shape reproduced: CommDB (all selectivities) grows geometrically and hits the budget (DNF) at 8–10 atoms; q-HD stays within a small multiple of its 2-atom cost. Lower selectivity ⇒ earlier DNF, as in the paper.",
    "fig7b": "Shape reproduced with the paper's own nuance: at selectivity 30 (large joins) the chain crossover falls at ~9 atoms and q-HD wins at 10 while the baseline nears the budget; at selectivities 60/90 the baseline remains competitive — the paper notes q-HD's gain concentrates on long, low-selectivity queries (§6.1: 'on queries where the structure plays a marginal role, q-HD … is generally not competitive').",
    "fig7c": "Shape reproduced: cardinality 1000 pushes the baseline to DNF earliest; q-HD scales linearly with cardinality.",
    "fig7d": "Shape reproduced on the cyclic family: the baseline crosses over at ~9 atoms for every cardinality and q-HD wins beyond; at the extreme point (10 atoms, cardinality ≥ 750) both exceed the budget — the width-2 chain decomposition's V² node relations are the polynomial bound's price, visible in the paper's Fig. 7(d) as well.",
    "fig8a": "Shape reproduced: q-HD < CommDB+stats at every size (~1.4×); the optimizer-disabled baseline's ratio to CommDB+stats grows with size (memory-pressure spilling) and exceeds the budget at the largest sizes.",
    "fig8b": "Shape reproduced: same ordering on the 8-relation Q8 join core.",
    "fig9": "Shape reproduced: the coupling wins from 6 atoms and the gap grows to ~10× (acyclic) / ~3× (chain) at 10 atoms; stock PostgreSQL degrades fastest once GEQO takes over (≥ 8 relations).",
    "fig10": "Shape reproduced on the paper's pipeline inputs (first-found NF decompositions): Optimize strips the duplicated bounding atoms and halves the work at 10 atoms. Note: the full cost-k-decomp search already avoids most of the redundancy upfront, so the ablation is run on det-k-decomp outputs (the decompositions of the paper's HD₁ example).",
    "overhead": "Shape reproduced: ANALYZE cost grows linearly with database size while decomposition time stays milliseconds and size-independent (the paper's 800 s vs 1.5 s contrast).",
}

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every figure of the paper's evaluation (§6), reproduced by the harness in
`src/repro/bench/experiments.py` (bench targets in `benchmarks/`).

**Metric.** The paper reports wall-clock seconds on a 2.66 GHz Pentium 4
with 512 MB RAM. This reproduction reports **work units** (tuples touched
by all operators, plus spill penalties for intermediates exceeding the
simulated memory) — deterministic and machine-independent. `DNF` marks runs
that exceeded the work budget, the analogue of the paper's "> 10 minutes".
Absolute numbers are not comparable with the paper; the *shapes* — who
wins, by what factor, where the crossovers fall — are the reproduction
targets.

**Workload scaling.** TPC-H databases use dbgen-faithful schemas and row
ratios, scaled down 100× for the in-memory Python engine (the `size_mb`
axis keeps the paper's 200–1000 labels). Synthetic workloads use the
paper's exact parameters (cardinality 450–1000, selectivity 30–90 % distinct
values, 2–10 atoms).

Regenerate with: `python scripts/generate_experiments_md.py --scale full`
(also writes `experiments.csv` / `experiments.json` next to this file).

"""


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", choices=["quick", "full"], default="full")
    parser.add_argument("--output", default="EXPERIMENTS.md")
    args = parser.parse_args()

    sections = [HEADER]
    results = []
    for experiment_id in [
        "fig7a", "fig7b", "fig7c", "fig7d",
        "fig8a", "fig8b", "fig9", "fig10", "overhead",
    ]:
        started = time.perf_counter()
        print(f"running {experiment_id} ({args.scale}) ...", flush=True)
        result = run_experiment(experiment_id, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(f"  done in {elapsed:.1f}s", flush=True)
        results.append(result)

        sections.append(f"## {experiment_id} — {result.title}\n")
        sections.append(f"**Paper:** {PAPER_NOTES[experiment_id]}\n")
        metric = "elapsed_seconds" if experiment_id == "overhead" else "work"
        label = "size_mb" if "fig8" in experiment_id or experiment_id == "overhead" else "atoms"
        sections.append(f"**Measured ({metric}):**\n")
        sections.append(render_markdown_table(result, metric=metric, point_label=label))
        sections.append("")
        sections.append(f"**Verdict:** {VERDICTS[experiment_id]}\n")
        for note in result.notes:
            sections.append(f"*{note}*\n")

    Path(args.output).write_text("\n".join(sections))
    write_csv(results, Path(args.output).with_name("experiments.csv"))
    write_json(results, Path(args.output).with_name("experiments.json"))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

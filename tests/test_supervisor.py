"""Self-healing shard serving: supervisor, retries, failover, parity.

Three layers of coverage, cheapest first:

* **property layer** — hypothesis round-trips of the new wire shapes
  (:class:`ShardUnavailable` through the error codec,
  :class:`RestartEvent` through ``to_entry``/``from_entry``) and the
  bounds of :func:`jittered_backoff` / :class:`RetryBudget`;
* **unit layer** — the :class:`ShardSupervisor` state machine driven
  with a fake router and a fake clock (no processes, no sleeping):
  seeded backoff schedules, the restart budget opening the breaker, the
  half-open trial after cooldown;
* **integration layer** — one real supervised cluster: SIGKILL a
  worker, watch traffic fail over with zero wrong answers, the shard
  restart, and the post-recovery run stay byte-identical; plus the
  acceptance-bar parity check that ``supervise`` with zero faults is
  byte-identical to an unsupervised cluster.
"""

import os
import signal
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.dbms import DBMSResult
from repro.errors import ShardError, ShardUnavailable
from repro.resilience import RetryBudget, RetryPolicy, jittered_backoff
from repro.shard import (
    ConsistentHashRing,
    RestartEvent,
    ShardConfig,
    ShardRouter,
    ShardSupervisor,
    SupervisorPolicy,
    decode_error,
    encode_error,
)

from tests.test_shard import SHARDS, TEMPLATES, workload

import random as random_module


# ---------------------------------------------------------------------------
# Property layer: wire shapes and retry primitives
# ---------------------------------------------------------------------------

_REASONS = ["retry-budget", "deadline", "no-live-shard", "draining"]

_EVENT_KINDS = [
    "worker-death",
    "restart-scheduled",
    "worker-restarted",
    "shard-recovered",
    "breaker-open",
]


class TestShardUnavailableCodec:
    @settings(max_examples=60, deadline=None)
    @given(
        message=st.text(min_size=1, max_size=80),
        shard_id=st.one_of(st.none(), st.integers(0, 63)),
        attempts=st.integers(1, 10),
        reason=st.sampled_from(_REASONS),
    )
    def test_round_trips_through_the_codec(
        self, message, shard_id, attempts, reason
    ):
        original = ShardUnavailable(
            message, shard_id=shard_id, attempts=attempts, reason=reason
        )
        rebuilt = decode_error(*encode_error(original))
        assert type(rebuilt) is ShardUnavailable
        assert str(rebuilt) == str(original)
        assert rebuilt.shard_id == shard_id
        assert rebuilt.attempts == attempts
        assert rebuilt.reason == reason

    def test_is_a_shard_error(self):
        assert issubclass(ShardUnavailable, ShardError)


class TestRestartEventCodec:
    @settings(max_examples=60, deadline=None)
    @given(
        shard_id=st.integers(0, 63),
        kind=st.sampled_from(_EVENT_KINDS),
        incarnation=st.integers(0, 100),
        attempt=st.integers(0, 20),
        exitcode=st.one_of(st.none(), st.integers(-15, 255)),
        backoff=st.floats(0.0, 60.0, allow_nan=False),
        lost=st.integers(0, 1000),
    )
    def test_entry_round_trips(
        self, shard_id, kind, incarnation, attempt, exitcode, backoff, lost
    ):
        original = RestartEvent(
            shard_id=shard_id,
            kind=kind,
            incarnation=incarnation,
            attempt=attempt,
            exitcode=exitcode,
            backoff_seconds=backoff,
            inflight_lost=lost,
        )
        assert RestartEvent.from_entry(original.to_entry()) == original

    def test_missing_optional_entry_keys_default(self):
        event = RestartEvent.from_entry({"shard_id": 3, "kind": "worker-death"})
        assert event == RestartEvent(shard_id=3, kind="worker-death")


class TestRetryPrimitives:
    @settings(max_examples=80, deadline=None)
    @given(
        attempt=st.integers(0, 12),
        base=st.floats(0.001, 2.0, allow_nan=False),
        cap=st.floats(0.001, 5.0, allow_nan=False),
        seed=st.integers(0, 10_000),
    )
    def test_backoff_within_half_span_and_span(self, attempt, base, cap, seed):
        rng = random_module.Random(seed)
        span = min(cap, base * 2.0 ** attempt)
        backoff = jittered_backoff(
            attempt, base_seconds=base, cap_seconds=cap, rng=rng
        )
        assert span / 2 <= backoff <= span

    def test_backoff_is_deterministic_given_seed(self):
        draws = [
            tuple(
                jittered_backoff(
                    a, base_seconds=0.05, cap_seconds=2.0,
                    rng=random_module.Random(7),
                )
                for a in range(6)
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_budget_counts_down_then_refuses(self):
        budget = RetryPolicy(max_retries=2).budget()
        assert budget.admissible() is None
        assert budget.admit() is None  # no deadline: unbounded remaining
        assert budget.admit() is None
        assert budget.admissible() == "retry-budget"
        with pytest.raises(RuntimeError):
            budget.admit()
        assert budget.attempts == 3

    def test_budget_enforces_the_original_deadline(self):
        clock = _FakeClock(100.0)
        budget = RetryPolicy(max_retries=5).budget(
            deadline_at=101.0, clock=clock
        )
        remaining = budget.admit()
        assert remaining == pytest.approx(1.0)
        clock.advance(2.0)  # past the original deadline
        assert budget.admissible() == "deadline"
        with pytest.raises(RuntimeError):
            budget.admit()

    def test_negative_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            jittered_backoff(
                0, base_seconds=-1.0, cap_seconds=1.0,
                rng=random_module.Random(0),
            )


class TestRingFailover:
    def test_exclude_walks_to_the_next_live_owner(self):
        ring = ConsistentHashRing(4)
        key = "template-fingerprint"
        primary = ring.shard_for(key)
        failover = ring.shard_for(key, exclude={primary})
        assert failover != primary
        # Deterministic: the same exclusion always lands the same node.
        assert failover == ring.shard_for(key, exclude={primary})

    def test_all_down_raises_lookup_error(self):
        ring = ConsistentHashRing(3)
        with pytest.raises(LookupError):
            ring.shard_for("k", exclude={0, 1, 2})


# ---------------------------------------------------------------------------
# Unit layer: the supervisor state machine (fake router, fake clock)
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _FakeRouter:
    """Just enough router surface for supervisor unit tests."""

    def __init__(self, shards: int = 2, respawn_ok: bool = True):
        self.shards = shards
        self.respawn_ok = respawn_ok
        self.respawns = []

    def _respawn_shard(self, shard_id: int, incarnation: int) -> bool:
        self.respawns.append((shard_id, incarnation))
        return self.respawn_ok


def _drain_due(supervisor: ShardSupervisor) -> int:
    """Run every currently-due scheduled restart; the count executed.

    Drives the schedule synchronously instead of via the supervisor
    thread, so unit tests never sleep.
    """
    import heapq

    ran = 0
    while True:
        with supervisor._cond:
            if (
                not supervisor._due
                or supervisor._due[0][0] > supervisor._clock()
            ):
                return ran
            _, shard_id, attempt = heapq.heappop(supervisor._due)
        supervisor._attempt_restart(shard_id, attempt)
        ran += 1


class TestSupervisorStateMachine:
    def make(self, policy=None, shards=2):
        clock = _FakeClock()
        router = _FakeRouter(shards=shards)
        supervisor = ShardSupervisor(
            router,
            policy or SupervisorPolicy(max_restarts=2, seed=11),
            clock=clock,
        )
        return supervisor, router, clock

    def test_death_schedules_a_seeded_backoff_restart(self):
        supervisor, router, clock = self.make()
        supervisor.on_worker_death(0, exitcode=-9, inflight_lost=3)
        snapshot = supervisor.snapshot()
        assert snapshot["per_shard"][0]["state"] == "backoff"
        assert snapshot["scheduled_restarts"] == 1
        assert supervisor.metrics.worker_deaths == 1
        # Not due yet (backoff > 0), then due after the clock advances.
        assert _drain_due(supervisor) == 0
        clock.advance(SupervisorPolicy().backoff_base_seconds * 2)
        assert _drain_due(supervisor) == 1
        assert router.respawns == [(0, 1)]
        kinds = [event["kind"] for event in supervisor.events()]
        assert kinds == [
            "worker-death", "restart-scheduled", "worker-restarted",
        ]

    def test_backoff_schedule_is_reproducible_across_instances(self):
        def schedule():
            supervisor, _, clock = self.make(
                policy=SupervisorPolicy(max_restarts=9, seed=42)
            )
            backoffs = []
            for _ in range(4):
                supervisor.on_worker_death(1, exitcode=None, inflight_lost=0)
                clock.advance(10.0)
                _drain_due(supervisor)
            for event in supervisor.events():
                if event["kind"] == "restart-scheduled":
                    backoffs.append(event["backoff_seconds"])
            return backoffs

        first, second = schedule(), schedule()
        assert first == second
        assert len(first) == 4
        assert all(backoff > 0 for backoff in first)

    def test_ready_resets_the_budget_and_records_recovery(self):
        supervisor, router, clock = self.make()
        supervisor.on_worker_death(0, exitcode=-9, inflight_lost=0)
        clock.advance(1.0)
        _drain_due(supervisor)
        clock.advance(0.5)
        supervisor.on_worker_ready(0, incarnation=1)
        snapshot = supervisor.snapshot()
        assert snapshot["per_shard"][0]["state"] == "up"
        assert snapshot["per_shard"][0]["consecutive_failures"] == 0
        assert snapshot["per_shard"][0]["incarnation"] == 1
        recovery = snapshot["metrics"]["recovery_seconds"]
        assert recovery["count"] == 1
        assert recovery["max"] == pytest.approx(1.5)

    def test_budget_exhaustion_opens_the_breaker_then_half_open_trial(self):
        policy = SupervisorPolicy(
            max_restarts=1, breaker_cooldown_seconds=30.0, seed=3
        )
        supervisor, router, clock = self.make(policy=policy)
        # Death 1: restart admitted (budget 1).
        supervisor.on_worker_death(0, exitcode=-9, inflight_lost=0)
        clock.advance(5.0)
        assert _drain_due(supervisor) == 1
        assert len(router.respawns) == 1
        # Death 2 without an intervening ready: budget exhausted.
        supervisor.on_worker_death(0, exitcode=-9, inflight_lost=0)
        clock.advance(5.0)
        assert _drain_due(supervisor) == 1  # the attempt ran, but parked
        assert len(router.respawns) == 1  # no new respawn
        snapshot = supervisor.snapshot()
        assert snapshot["per_shard"][0]["state"] == "open"
        assert snapshot["per_shard"][0]["breaker"] == "open"
        assert supervisor.metrics.breaker_opens == 1
        assert snapshot["scheduled_restarts"] == 1  # the half-open trial
        # After the cooldown the half-open trial restarts the worker.
        clock.advance(policy.breaker_cooldown_seconds + 0.1)
        assert _drain_due(supervisor) == 1
        assert len(router.respawns) == 2
        # A success closes the breaker and refreshes the budget.
        supervisor.on_worker_ready(0, incarnation=router.respawns[-1][1])
        assert supervisor.snapshot()["per_shard"][0]["breaker"] == "closed"

    def test_respawn_refused_by_draining_router_stops_quietly(self):
        supervisor, router, clock = self.make()
        router.respawn_ok = False
        supervisor.on_worker_death(0, exitcode=None, inflight_lost=0)
        clock.advance(1.0)
        _drain_due(supervisor)
        assert supervisor.metrics.restarts == 0
        assert supervisor.snapshot()["scheduled_restarts"] == 0

    def test_stop_is_idempotent(self):
        supervisor, _, _ = self.make()
        supervisor.start()
        supervisor.stop()
        supervisor.stop()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_base_seconds=-0.1)
        with pytest.raises(ValueError):
            SupervisorPolicy(breaker_cooldown_seconds=-1.0)


# ---------------------------------------------------------------------------
# Integration layer: one real supervised cluster
# ---------------------------------------------------------------------------

#: Fast-healing policy so the integration tests never wait long.
FAST_POLICY = SupervisorPolicy(
    max_restarts=8,
    backoff_base_seconds=0.02,
    backoff_cap_seconds=0.2,
    seed=7,
)

RECOVERY_TIMEOUT = 30.0


def _await_live(router: ShardRouter, count: int) -> bool:
    deadline = time.monotonic() + RECOVERY_TIMEOUT
    while time.monotonic() < deadline:
        if len(router.live_shards()) == count:
            return True
        time.sleep(0.05)
    return False


def _rows(outcomes):
    assert all(isinstance(o, DBMSResult) for o in outcomes)
    return [(o.relation.attributes, o.relation.tuples, o.work) for o in outcomes]


@pytest.fixture(scope="module")
def healed_cluster(chain_db_module):
    """Kill a worker mid-life, let the supervisor heal it, capture it all."""
    config = ShardConfig(
        database=chain_db_module,
        max_width=2,
        workers=2,
        queue_capacity=256,
        cache_capacity=64,
        seed=0,
        insights=True,
    )
    router = ShardRouter(config, shards=SHARDS, supervise=FAST_POLICY)
    artifacts = {}
    try:
        queries = workload()
        artifacts["before"] = router.run_all(queries)
        artifacts["epoch_before"] = router.ring_epoch()

        victim = router.route(TEMPLATES[0].format(c=3))
        os.kill(router.shard_pids()[victim], signal.SIGKILL)
        artifacts["victim"] = victim

        # Immediately after the kill: traffic must fail over, not error.
        artifacts["during"] = router.run_all(queries)
        artifacts["recovered"] = _await_live(router, SHARDS)
        artifacts["after"] = router.run_all(queries)
        artifacts["epoch_after"] = router.ring_epoch()
        artifacts["snapshot"] = router.snapshot()
        artifacts["live_after"] = router.live_shards()
    finally:
        artifacts["drained"] = router.drain(grace_seconds=30.0)
        artifacts["drain_again"] = router.drain(grace_seconds=30.0)
        artifacts["router"] = router
    return artifacts


@pytest.fixture(scope="module")
def chain_db_module():
    """Module-scoped copy of the conftest chain database."""
    import random

    from repro.relational import AttributeType, Database, RelationSchema

    rng = random.Random(0)
    db = Database("chain4")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(8), rng.randrange(8)) for _ in range(40)]
        )
    db.analyze()
    return db


class TestSelfHealingCluster:
    def test_no_wrong_answers_at_any_phase(self, healed_cluster):
        before = _rows(healed_cluster["before"])
        assert _rows(healed_cluster["during"]) == before
        assert _rows(healed_cluster["after"]) == before

    def test_shard_count_restored(self, healed_cluster):
        assert healed_cluster["recovered"]
        assert sorted(healed_cluster["live_after"]) == list(range(SHARDS))

    def test_ring_epoch_bumped_down_and_up(self, healed_cluster):
        # One death + one recovery = two epoch bumps (each clears the
        # route LRU, so templates return to their primary owner).
        assert (
            healed_cluster["epoch_after"]
            >= healed_cluster["epoch_before"] + 2
        )

    def test_supervisor_snapshot_records_the_healing(self, healed_cluster):
        supervisor_view = healed_cluster["snapshot"]["supervisor"]
        metrics = supervisor_view["metrics"]
        assert metrics["worker_deaths"] >= 1
        assert metrics["restarts"] >= 1
        assert metrics["ring_epochs"] >= 2
        assert metrics["recovery_seconds"]["count"] >= 1
        assert metrics["recovery_seconds"]["max"] > 0
        victim = healed_cluster["victim"]
        assert supervisor_view["per_shard"][victim]["state"] == "up"
        assert supervisor_view["per_shard"][victim]["incarnation"] >= 1
        kinds = {event["kind"] for event in supervisor_view["events"]}
        assert {
            "worker-death", "restart-scheduled",
            "worker-restarted", "shard-recovered",
        } <= kinds

    def test_router_snapshot_tags_down_shards_and_incarnations(
        self, healed_cluster
    ):
        router_view = healed_cluster["snapshot"]["router"]
        assert router_view["down_shards"] == []  # healed by snapshot time
        victim = healed_cluster["victim"]
        assert router_view["per_shard"][victim]["incarnation"] >= 1
        assert router_view["ring_epoch"] == healed_cluster["epoch_after"]

    def test_supervision_events_surface_in_merged_slow_log(
        self, healed_cluster
    ):
        merged = healed_cluster["snapshot"]["merged"]
        events = merged["insights"]["slow_log"]["events"]
        kinds = {event.get("kind") for event in events}
        assert "worker-death" in kinds

    def test_drain_is_clean_and_idempotent_after_healing(self, healed_cluster):
        assert healed_cluster["drained"] is True
        assert healed_cluster["drain_again"] is True

    def test_no_lock_order_violations(self, healed_cluster):
        assert healed_cluster["router"].lock_violations() == {}


class TestSupervisedParity:
    def test_zero_fault_supervised_run_is_byte_identical(self, chain_db_module):
        """The acceptance bar: ``supervise`` must be invisible when
        nothing fails — same rows, same order, same work counters."""
        config = ShardConfig(
            database=chain_db_module,
            max_width=2,
            workers=2,
            queue_capacity=256,
            cache_capacity=64,
            seed=0,
        )
        queries = workload()

        plain = ShardRouter(config, shards=SHARDS)
        try:
            baseline = plain.run_all(queries)
        finally:
            assert plain.drain(grace_seconds=30.0)

        supervised = ShardRouter(
            config, shards=SHARDS, supervise=FAST_POLICY
        )
        try:
            outcomes = supervised.run_all(queries)
            snapshot = supervised.snapshot()
        finally:
            assert supervised.drain(grace_seconds=30.0)

        assert _rows(outcomes) == _rows(baseline)
        # A fault-free supervised run never healed anything.
        metrics = snapshot["supervisor"]["metrics"]
        assert metrics["worker_deaths"] == 0
        assert metrics["restarts"] == 0
        assert snapshot["router"]["ring_epoch"] == 0


class TestConcurrentDrain:
    def test_drain_races_with_watchdog_restart(self, chain_db_module):
        """Kill a worker, then drain from two threads while the
        supervisor is mid-restart: exactly one drain runs, both callers
        get the same verdict, nothing hangs, nothing respawns after."""
        config = ShardConfig(
            database=chain_db_module,
            max_width=2,
            workers=2,
            queue_capacity=64,
            seed=0,
        )
        router = ShardRouter(config, shards=2, supervise=FAST_POLICY)
        verdicts = []
        try:
            router.run_all([TEMPLATES[0].format(c=3)])
            os.kill(router.shard_pids()[0], signal.SIGKILL)

            def drain():
                verdicts.append(router.drain(grace_seconds=30.0))

            threads = [threading.Thread(target=drain) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive()
        finally:
            verdicts.append(router.drain(grace_seconds=30.0))
        assert len(set(verdicts)) == 1  # idempotent: one shared verdict
        assert router.lock_violations() == {}

"""Tests for plan nodes and the standalone executor."""

import pytest

from repro.engine.executor import ExecutionResult, PlanExecutor, run_plan
from repro.engine.plan import JoinNode, ScanNode, left_deep_plan, render_plan
from repro.errors import ExecutionError, OptimizationError
from repro.metering import WorkMeter
from repro.relational import Relation


@pytest.fixture()
def base():
    return {
        "r": Relation(["a", "j"], [(1, 1), (2, 2)], name="r"),
        "s": Relation(["j", "b"], [(1, 10), (2, 20), (2, 21)], name="s"),
    }


class TestPlanNodes:
    def test_scan_properties(self):
        scan = ScanNode("r1", "rel")
        assert scan.aliases == frozenset({"r1"})
        assert scan.join_count() == 0
        assert "AS r1" in str(scan)

    def test_join_properties(self):
        join = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ("j",))
        assert join.aliases == frozenset({"r", "s"})
        assert not join.is_cross_product
        assert join.join_count() == 1
        assert "HashJoin" in str(join)

    def test_cross_join_label(self):
        join = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ())
        assert join.is_cross_product
        assert "CrossJoin" in str(join)

    def test_left_deep_builder(self):
        scans = [ScanNode(n, n) for n in ("a", "b", "c")]
        plan = left_deep_plan(scans, lambda prefix, scan: ("x",))
        assert plan.join_count() == 2
        assert isinstance(plan.right, ScanNode)

    def test_left_deep_empty_rejected(self):
        with pytest.raises(OptimizationError):
            left_deep_plan([], lambda prefix, scan: ())

    def test_render_plan(self):
        join = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ("j",))
        text = render_plan(join)
        assert text.count("Scan") == 2
        assert "rows≈" in text


class TestExecutor:
    def test_scan_and_join(self, base):
        plan = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ("j",))
        meter = WorkMeter()
        result = PlanExecutor(base, meter).execute(plan)
        assert len(result) == 3
        assert meter.total > 0

    def test_missing_alias(self, base):
        with pytest.raises(ExecutionError, match="alias"):
            PlanExecutor(base).execute(ScanNode("zzz", "zzz"))

    def test_run_plan_success(self, base):
        plan = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ("j",))
        result = run_plan(plan, base, WorkMeter())
        assert result.finished
        assert len(result.require_relation()) == 3
        assert "HashJoin" in result.plan_text

    def test_run_plan_budget_exhaustion(self, base):
        plan = JoinNode(ScanNode("r", "r"), ScanNode("s", "s"), ("j",))
        result = run_plan(plan, base, WorkMeter(budget=1))
        assert not result.finished
        assert result.relation is None
        with pytest.raises(ExecutionError):
            result.require_relation()

    def test_run_plan_finalize(self, base):
        plan = ScanNode("r", "r")
        result = run_plan(
            plan, base, WorkMeter(), finalize=lambda rel: rel.project(["a"])
        )
        assert result.relation.attributes == ("a",)

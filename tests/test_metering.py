"""Tests for work metering and the spill model."""

import sys
import threading

import pytest

from repro.errors import WorkBudgetExceeded
from repro.metering import NULL_METER, NullMeter, SpillModel, WorkMeter


class TestWorkMeter:
    def test_accumulates_by_category(self):
        meter = WorkMeter()
        meter.charge(10, "scan")
        meter.charge(5, "join")
        meter.charge(3, "scan")
        assert meter.total == 18
        assert meter.by_category == {"scan": 13, "join": 5}

    def test_snapshot_includes_total(self):
        meter = WorkMeter()
        meter.charge(7, "x")
        snap = meter.snapshot()
        assert snap == {"x": 7, "total": 7}

    def test_budget_enforced(self):
        meter = WorkMeter(budget=10)
        meter.charge(10)
        with pytest.raises(WorkBudgetExceeded) as err:
            meter.charge(1)
        assert err.value.budget == 10
        assert err.value.spent == 11

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            WorkMeter(budget=0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            WorkMeter().charge(-1)

    def test_elapsed_seconds_monotone(self):
        meter = WorkMeter()
        assert meter.elapsed_seconds >= 0.0

    def test_null_meter_records_nothing(self):
        NULL_METER.charge(10_000_000)
        assert NULL_METER.total == 0
        assert isinstance(NULL_METER, NullMeter)

    def test_concurrent_charges_are_exact(self):
        # Regression: charge() used read-modify-write without a lock, so
        # concurrent workers (the serving layer's pool) could lose updates.
        meter = WorkMeter()
        threads_n, per_thread = 8, 2_000
        barrier = threading.Barrier(threads_n)
        interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force aggressive interleaving
        try:

            def worker():
                barrier.wait()
                for _ in range(per_thread):
                    meter.charge(1, "scan")
                    meter.charge(2, "join")

            threads = [
                threading.Thread(target=worker) for _ in range(threads_n)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(interval)
        assert meter.total == threads_n * per_thread * 3
        assert meter.by_category == {
            "scan": threads_n * per_thread,
            "join": threads_n * per_thread * 2,
        }

    def test_concurrent_budget_single_exceeder_consistent(self):
        # Under a budget, concurrent charging must never corrupt the total:
        # whatever interleaving occurs, spent == budget + overshoot of the
        # charge that tripped it.
        meter = WorkMeter(budget=500)
        exceeded = []

        def worker():
            try:
                for _ in range(1_000):
                    meter.charge(1)
            except WorkBudgetExceeded as err:
                exceeded.append(err)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert exceeded  # the budget tripped
        assert meter.total >= 500
        assert meter.total <= 500 + len(exceeded)


class TestSpillModel:
    def test_no_charge_under_threshold(self):
        meter = WorkMeter()
        SpillModel(100, 10.0).charge(meter, 100)
        assert meter.total == 0

    def test_charge_over_threshold(self):
        meter = WorkMeter()
        SpillModel(100, 10.0).charge(meter, 150)
        assert meter.total == 500
        assert meter.by_category == {"spill": 500}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpillModel(0)
        with pytest.raises(ValueError):
            SpillModel(10, -1.0)

    def test_spill_respects_budget(self):
        meter = WorkMeter(budget=100)
        with pytest.raises(WorkBudgetExceeded):
            SpillModel(10, 100.0).charge(meter, 50)

"""Edge-case tests for the decomposition cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import (
    AtomEstimate,
    DecompositionCostModel,
    JoinEstimate,
)
from repro.query.builder import ConjunctiveQueryBuilder

positive = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


class TestAtomEstimate:
    def test_distinct_capped_by_cardinality(self):
        est = AtomEstimate(cardinality=10, distinct={"X": 500})
        assert est.distinct_of("X") == 10

    def test_distinct_floor_is_one(self):
        est = AtomEstimate(cardinality=10, distinct={"X": 0.0})
        assert est.distinct_of("X") == 1.0

    def test_unknown_variable_defaults(self):
        est = AtomEstimate(cardinality=1000, distinct={})
        assert est.distinct_of("zzz") > 0


class TestJoinMath:
    @settings(max_examples=60, deadline=None)
    @given(l_card=positive, r_card=positive, l_d=positive, r_d=positive)
    def test_join_size_bounded_by_cross_product(self, l_card, r_card, l_d, r_d):
        left = JoinEstimate(l_card, {"X": min(l_d, l_card)})
        right = JoinEstimate(r_card, {"X": min(r_d, r_card)})
        joined = DecompositionCostModel.join(left, right, ["X"])
        assert joined.cardinality <= l_card * r_card + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(card=positive, d=positive)
    def test_join_symmetric(self, card, d):
        a = JoinEstimate(card, {"X": min(d, card)})
        b = JoinEstimate(card * 2, {"X": min(d * 3, card * 2)})
        ab = DecompositionCostModel.join(a, b, ["X"])
        ba = DecompositionCostModel.join(b, a, ["X"])
        assert ab.cardinality == pytest.approx(ba.cardinality)

    def test_multi_variable_join_divides_per_variable(self):
        a = JoinEstimate(100, {"X": 10, "Y": 5})
        b = JoinEstimate(100, {"X": 10, "Y": 5})
        joined = DecompositionCostModel.join(a, b, ["X", "Y"])
        assert joined.cardinality == pytest.approx(100 * 100 / (10 * 5))

    def test_projection_never_grows(self):
        est = JoinEstimate(500, {"X": 100, "Y": 3})
        model = DecompositionCostModel({})
        projected = model.project(est, ["Y"])
        assert projected.cardinality <= est.cardinality
        assert projected.cardinality <= 3 + 1e-9

    def test_projection_to_nothing(self):
        est = JoinEstimate(500, {"X": 100})
        model = DecompositionCostModel({})
        projected = model.project(est, [])
        assert projected.cardinality >= 1.0


class TestNodeEstimate:
    def test_node_estimate_matches_manual_fold(self):
        q = (
            ConjunctiveQueryBuilder()
            .atom("a", "ra", "X", "Y")
            .atom("b", "rb", "Y", "Z")
            .output("X")
            .build()
        )
        model = DecompositionCostModel(
            {
                "a": AtomEstimate(100, {"X": 10, "Y": 20}),
                "b": AtomEstimate(50, {"Y": 25, "Z": 5}),
            }
        )
        atom_vars = {atom.name: atom.variables for atom in q.atoms}
        estimate, cost = model.node_estimate(
            ["a", "b"], atom_vars, frozenset({"X", "Y", "Z"})
        )
        # 100·50 / max(20, 25) = 200 joined rows.
        assert estimate.cardinality == pytest.approx(200)
        assert cost > 0

    def test_stitch_reduces_to_chi(self):
        parent = JoinEstimate(100, {"X": 10, "Y": 10})
        child = JoinEstimate(50, {"Y": 10, "Z": 5})
        stitched = DecompositionCostModel.stitch(parent, child, frozenset({"X", "Y"}))
        assert "Z" not in stitched.distinct

"""The intra-query parallel evaluator: parity, memoization, tracing, faults.

The contract under test is the strongest one the module makes: for every
workload and every worker count, the parallel evaluator returns *exactly*
the serial evaluator's relation — same rows, same order — and under
injected faults each run is correct-or-typed-error, never silently wrong.
"""

from __future__ import annotations

import pytest

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.engine.scans import atom_relations
from repro.errors import ReproError
from repro.metering import WorkMeter
from repro.obs.tracing import Tracer
from repro.parallel import (
    NodeMemo,
    ParallelQHDEvaluator,
    SubtreePool,
    fused_join_project,
    joined_attributes,
    subtree_signature,
)
from repro.relational.relation import Relation
from repro.resilience.faults import FaultInjector
from repro.service.server import QueryService
from repro.core.optimizer import HybridOptimizer
from repro.core.views import _view_dependencies, execute_view_plan
from repro.workloads.synthetic import (
    StarConfig,
    SyntheticConfig,
    generate_star_database,
    generate_synthetic_database,
    star_query_sql,
    synthetic_query_sql,
)

from tests.conftest import CHAIN_SQL

WORKER_COUNTS = (1, 2, 8)


def _plans():
    """(name, database, sql, max_width) for every parity workload."""
    chain = SyntheticConfig(
        n_atoms=6, cardinality=120, selectivity=12, cyclic=True, seed=7
    )
    star = StarConfig(n_dimensions=4, fact_rows=150, dimension_rows=40, seed=5)
    return [
        ("chain", generate_synthetic_database(chain), synthetic_query_sql(chain), 2),
        ("star", generate_star_database(star), star_query_sql(star), 3),
    ]


@pytest.fixture(scope="module")
def workloads():
    return _plans()


class TestParity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_synthetic_parity(self, workloads, workers):
        for name, db, sql, width in workloads:
            plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(
                sql, name=name
            )
            serial = plan.execute()
            parallel = plan.execute(parallel_workers=workers)
            assert parallel.relation.attributes == serial.relation.attributes, name
            assert parallel.relation.tuples == serial.relation.tuples, name
            assert parallel.finished and serial.finished

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("query", ["q5", "q8"])
    def test_tpch_parity(self, tiny_tpch, query, workers):
        from repro.workloads.tpch_queries import TPCH_QUERIES

        plan = HybridOptimizer(tiny_tpch, max_width=3).optimize(
            TPCH_QUERIES[query](), name=query
        )
        serial = plan.execute()
        parallel = plan.execute(parallel_workers=workers)
        assert parallel.relation.attributes == serial.relation.attributes
        assert parallel.relation.tuples == serial.relation.tuples

    def test_single_worker_is_the_serial_path(self, workloads):
        """``parallel_workers=1`` must add zero work units (overhead guard)."""
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        serial = plan.execute()
        one = plan.execute(parallel_workers=1)
        assert one.work == serial.work
        assert one.work_breakdown == serial.work_breakdown

    def test_trace_matches_serial_shape(self, workloads):
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        base = atom_relations(plan.translation.query, db, plan.translation)
        serial_lines = []
        from repro.core.evaluator import QHDEvaluator

        serial_ev = QHDEvaluator(plan.decomposition, plan.translation.query)
        serial_ev.evaluate(base)
        parallel_ev = ParallelQHDEvaluator(
            plan.decomposition, plan.translation.query, workers=4
        )
        parallel_ev.evaluate(base)
        # One fold line per source per node, in the serial post-order.
        assert len(parallel_ev.trace()) == len(serial_ev.trace())


class TestFusedKernel:
    def test_matches_join_then_project(self):
        left = Relation(["a", "j"], [(i % 5, i % 3) for i in range(40)], name="L")
        right = Relation(["j", "b"], [(i % 3, i % 7) for i in range(50)], name="R")
        keep = ["a", "b"]
        expected = left.natural_join(right).project(keep, dedup=True)
        fused = fused_join_project(left, right, keep)
        assert fused.attributes == expected.attributes
        assert fused.tuples == expected.tuples

    def test_joined_attributes_matches_natural_join(self):
        left = Relation(["a", "j"], [(1, 2)], name="L")
        right = Relation(["j", "b", "c"], [(2, 3, 4)], name="R")
        assert tuple(joined_attributes(left, right)) == (
            left.natural_join(right).attributes
        )

    def test_charges_and_checkpoints(self):
        meter = WorkMeter()
        left = Relation(["a", "j"], [(i, i % 4) for i in range(30)])
        right = Relation(["j", "b"], [(i % 4, i) for i in range(30)])
        fused_join_project(left, right, ["a", "b"], meter=meter)
        assert "join-build" in meter.by_category
        assert "join-probe" in meter.by_category
        assert "join-out" in meter.by_category

    def test_cross_product_and_empty(self):
        left = Relation(["a"], [(1,), (2,)], name="L")
        right = Relation(["b"], [(3,), (4,)], name="R")
        fused = fused_join_project(left, right, ["a", "b"])
        expected = left.natural_join(right).project(["a", "b"], dedup=True)
        assert fused.tuples == expected.tuples
        empty = Relation(["j", "b"], [], name="E")
        out = fused_join_project(Relation(["a", "j"], [(1, 2)]), empty, ["a"])
        assert len(out) == 0


class TestMemo:
    def test_shared_across_evaluations(self, workloads):
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        base = atom_relations(plan.translation.query, db, plan.translation)
        memo = NodeMemo()
        first = ParallelQHDEvaluator(
            plan.decomposition, plan.translation.query, workers=2, memo=memo
        ).evaluate(base)
        assert memo.misses > 0 and len(memo) > 0
        second = ParallelQHDEvaluator(
            plan.decomposition, plan.translation.query, workers=2, memo=memo
        ).evaluate(base)
        assert memo.hits > 0
        assert second.tuples == first.tuples

    def test_signature_soundness(self, workloads):
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        base = atom_relations(plan.translation.query, db, plan.translation)
        root = plan.decomposition.root
        sig_a = subtree_signature(root, None, base)
        sig_b = subtree_signature(root, None, base)
        assert sig_a == sig_b  # deterministic
        child = root.ordered_children()[0] if root.ordered_children() else None
        if child is not None:
            child_sig = subtree_signature(
                child, frozenset(child.chi & root.chi), base
            )
            assert child_sig != sig_a  # different subtree → different key
        narrowed = subtree_signature(
            root, frozenset(sorted(root.chi)[:1]), base
        )
        assert narrowed != sig_a  # different interface → different key


class TestTracing:
    def test_node_spans_parent_under_parallel_span(self, workloads):
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        tracer = Tracer()
        plan.execute(tracer=tracer, parallel_workers=4)
        spans = tracer.spans()
        parallel = [s for s in spans if s.name == "qhd.parallel"]
        assert len(parallel) == 1
        nodes = [s for s in spans if s.name == "qhd.node"]
        assert nodes, "worker spans must be recorded"
        for span in nodes:
            assert span.parent_id == parallel[0].span_id


class TestPoolAndService:
    def test_pool_reuse_and_close(self, workloads):
        name, db, sql, width = workloads[0]
        plan = HybridOptimizer(db, max_width=width, use_statistics=False).optimize(sql)
        base = atom_relations(plan.translation.query, db, plan.translation)
        with SubtreePool(4) as pool:
            a = ParallelQHDEvaluator(
                plan.decomposition, plan.translation.query, workers=4, pool=pool
            ).evaluate(base)
            b = ParallelQHDEvaluator(
                plan.decomposition, plan.translation.query, workers=4, pool=pool
            ).evaluate(base)
        assert a.tuples == b.tuples

    def test_service_parallel_parity(self, chain_db):
        serial_svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2
        )
        try:
            baseline = serial_svc.execute(CHAIN_SQL)
        finally:
            serial_svc.close()
        svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            parallel_workers=4,
        )
        try:
            result = svc.execute(CHAIN_SQL)
            assert result.relation.attributes == baseline.relation.attributes
            assert result.relation.tuples == baseline.relation.tuples
        finally:
            svc.close()

    def test_service_parallel_fault_injection(self, chain_db):
        """Correct-or-typed-error: faults never produce a wrong answer."""
        serial_svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2
        )
        try:
            baseline = serial_svc.execute(CHAIN_SQL)
        finally:
            serial_svc.close()
        injector = FaultInjector(
            "exec.join:error:0.2,exec.qhd:error:0.2", seed=11
        )
        svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            parallel_workers=4,
            fault_injector=injector,
        )
        outcomes = {"ok": 0, "typed": 0}
        try:
            for _ in range(10):
                try:
                    result = svc.execute(CHAIN_SQL)
                except ReproError:
                    outcomes["typed"] += 1
                    continue
                assert result.relation.tuples == baseline.relation.tuples
                outcomes["ok"] += 1
        finally:
            svc.close()
        assert outcomes["ok"] + outcomes["typed"] == 10


class TestParallelViews:
    def test_dependency_extraction(self):
        views = [
            ("hdv_1", "SELECT a FROM base"),
            ("hdv_2", "SELECT a FROM other"),
            ("hdv_3", "SELECT a FROM hdv_1, hdv_2 WHERE hdv_1.a = hdv_2.a"),
        ]
        deps = _view_dependencies(views)
        assert deps == {
            "hdv_1": [],
            "hdv_2": [],
            "hdv_3": ["hdv_1", "hdv_2"],
        }

    def test_view_stack_parallel_parity(self, chain_db):
        plan = HybridOptimizer(chain_db, max_width=2).optimize(CHAIN_SQL)
        views = plan.to_sql_views()
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        serial = execute_view_plan(views, dbms)
        parallel = execute_view_plan(views, dbms, parallel_workers=4)
        assert parallel.relation.tuples == serial.relation.tuples
        assert parallel.work == serial.work

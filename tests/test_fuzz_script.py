"""Smoke test for the differential fuzzer script."""

import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "fuzz_differential.py"


def test_fuzzer_runs_clean():
    result = subprocess.run(
        [sys.executable, str(SCRIPT), "--iterations", "15", "--seed", "3"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no disagreements" in result.stdout

"""Query insights: histograms, slow log, SLO, registry, top, report.

The contract under test is the PR's acceptance bar:

* histogram merging is **exact** — associative, commutative, and
  bucket-identical to a single process fed the same observations — so a
  sharded cluster's merged per-template view is byte-identical to the
  view one process would have held;
* the disabled path (:data:`NULL_INSIGHTS`) costs **zero work units**:
  a service with insights off does exactly the work of one that never
  heard of them;
* the sharded serving path carries the per-shard registries through the
  existing snapshot merge, and the deterministic work histograms come
  out byte-identical to a single-process run of the same workload;
* ``hdqo report`` flags a seeded regression against the committed
  ``BENCH_serving.json`` trajectory point and passes clean on an honest
  trace.
"""

import io
import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.obs.flush import FlushRegistry
from repro.obs.insights import (
    DEFAULT_SCALE,
    LATENCY_RANGE,
    NULL_INSIGHTS,
    WORK_RANGE,
    InsightsRegistry,
    SLOPolicy,
    SLOTracker,
    SlowQueryLog,
    StreamingHistogram,
    analyze_spans,
    bucket_upper_bound,
    check_baseline,
    load_snapshot_file,
    load_span_records,
    merge_insights_snapshots,
    merge_slo_snapshots,
    merge_slow_entries,
    merge_snapshots,
    publish_snapshot_file,
    quantile_from_snapshot,
    render_insights_prometheus,
    render_report,
    render_top,
    run_top,
)
from repro.service.metrics import LatencyStat, ServiceMetrics
from repro.service.server import QueryService
from repro.shard.aggregate import merge_metric_snapshots

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Streaming histogram
# ---------------------------------------------------------------------------


class TestStreamingHistogram:
    def test_bucketing_is_deterministic_and_clamped(self):
        h = StreamingHistogram(index_range=(-8, 8))
        h.observe(0.0)       # non-positive -> reserved bucket below lo
        h.observe(-3.0)
        h.observe(1e-9)      # far below range -> clamps to lo
        h.observe(1e9)       # far above range -> clamps to hi
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"-9": 2, "-8": 1, "8": 1}

    def test_quantile_is_a_bucket_upper_bound(self):
        h = StreamingHistogram()
        for v in (0.010, 0.011, 0.012, 0.500):
            h.observe(v)
        p50 = h.quantile(0.50)
        # The bound encloses the observed median within one bucket width.
        assert 0.011 <= p50 <= 0.011 * 2 ** (1 / DEFAULT_SCALE)
        snap = h.snapshot()
        indexes = [int(k) for k in snap["buckets"]]
        assert p50 in {bucket_upper_bound(i, DEFAULT_SCALE) for i in indexes}

    def test_empty_histogram_quantile_and_totals(self):
        h = StreamingHistogram()
        assert h.quantile(0.99) == 0.0
        assert h.count == 0
        assert h.total == 0.0
        snap = h.snapshot()
        assert snap["min"] is None and snap["max"] is None

    def test_quantile_of_nonpositive_bucket_is_zero(self):
        h = StreamingHistogram()
        h.observe(0)
        assert h.quantile(0.5) == 0.0

    def test_geometry_mismatch_refuses_to_merge(self):
        latency = StreamingHistogram(index_range=LATENCY_RANGE)
        work = StreamingHistogram(index_range=WORK_RANGE)
        with pytest.raises(ValueError, match="geometry"):
            latency.merge(work)
        with pytest.raises(ValueError):
            merge_snapshots([latency.snapshot(), work.snapshot()])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StreamingHistogram(scale=0)
        with pytest.raises(ValueError):
            StreamingHistogram(index_range=(5, 4))
        with pytest.raises(ValueError):
            quantile_from_snapshot({}, 1.5)

    def test_snapshot_round_trip(self):
        h = StreamingHistogram()
        for v in (0.001, 0.25, 7.5):
            h.observe(v)
        rebuilt = StreamingHistogram.from_snapshot(h.snapshot())
        assert rebuilt.snapshot() == h.snapshot()

    def test_merge_empty_inputs(self):
        assert merge_snapshots([]) == {}
        assert merge_snapshots([{}, {}]) == {}


observations = st.lists(
    st.floats(
        min_value=1e-6, max_value=4000.0,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=0,
    max_size=60,
)


class TestMergeIsExact:
    """The cross-shard law: merged snapshots == one process's snapshot."""

    @settings(max_examples=60, deadline=None)
    @given(parts=st.lists(observations, min_size=1, max_size=5))
    def test_sharded_equals_single_process(self, parts):
        single = StreamingHistogram()
        shards = []
        for part in parts:
            shard = StreamingHistogram()
            for v in part:
                single.observe(v)
                shard.observe(v)
            shards.append(shard.snapshot())
        merged = merge_snapshots(shards)
        expected = single.snapshot()
        if not single.count:
            # All-empty snapshots merge to the empty sentinel.
            assert merged == {} or merged["count"] == 0
            return
        assert merged == expected  # byte-identical: buckets, totals, extrema

    @settings(max_examples=40, deadline=None)
    @given(
        parts=st.lists(observations, min_size=2, max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_commutative_and_associative(self, parts, seed):
        snaps = []
        for part in parts:
            h = StreamingHistogram()
            for v in part:
                h.observe(v)
            snaps.append(h.snapshot())
        flat = merge_snapshots(snaps)
        shuffled = list(snaps)
        random.Random(seed).shuffle(shuffled)
        assert merge_snapshots(shuffled) == flat
        # Regrouping: merge a prefix first, then fold in the rest.
        split = max(1, len(snaps) // 2)
        regrouped = merge_snapshots(
            [merge_snapshots(snaps[:split]), merge_snapshots(snaps[split:])]
        )
        assert regrouped == flat


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_retains_top_k_slowest(self):
        log = SlowQueryLog(top_k=2)
        for ms in (10, 50, 30, 70, 20):
            log.offer("t", ms / 1000.0, lambda ms=ms: {"plan": f"p{ms}"})
        entries = log.snapshot()["outliers"]["t"]
        assert [e["seconds"] for e in entries] == [0.07, 0.05]
        assert entries[0]["plan"] == "p70"

    def test_payload_runs_only_on_admission(self):
        log = SlowQueryLog(top_k=1)
        calls = []

        def capture(tag):
            def build():
                calls.append(tag)
                return {"tag": tag}
            return build

        assert log.offer("t", 1.0, capture("fast-enough"))
        assert not log.qualifies("t", 0.5)
        assert not log.offer("t", 0.5, capture("too-fast"))
        assert calls == ["fast-enough"]  # the losing capture never built

    def test_events_are_bounded_newest_win(self):
        log = SlowQueryLog(top_k=1, max_events=3)
        for i in range(5):
            log.record_event("t", f"kind{i}", {"n": i})
        events = log.snapshot()["events"]
        assert [e["kind"] for e in events] == ["kind2", "kind3", "kind4"]

    def test_rejects_degenerate_top_k(self):
        with pytest.raises(ValueError):
            SlowQueryLog(top_k=0)

    def test_merge_rebuilds_global_top_k(self):
        shard_a = [{"seconds": 0.9}, {"seconds": 0.1}]
        shard_b = [{"seconds": 0.5}, {"seconds": 0.7}]
        merged = merge_slow_entries([shard_a, shard_b], top_k=3)
        assert [e["seconds"] for e in merged] == [0.9, 0.7, 0.5]


# ---------------------------------------------------------------------------
# SLO burn rates (fake clock only — no wall time in this test)
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestSLOTracker:
    def test_burn_rate_math(self):
        clock = FakeClock()
        tracker = SLOTracker(
            SLOPolicy(threshold_seconds=0.1, objective=0.99), clock=clock
        )
        for _ in range(99):
            tracker.record(0.05, True)
        tracker.record(0.05, False)  # typed error -> bad
        snap = tracker.snapshot()
        assert snap["good"] == 99 and snap["bad"] == 1
        # 1% bad on a 1% budget: burning exactly at rate 1.
        assert snap["fast_burn_rate"] == pytest.approx(1.0)

    def test_slow_query_is_bad_even_when_ok(self):
        tracker = SLOTracker(
            SLOPolicy(threshold_seconds=0.1), clock=FakeClock()
        )
        tracker.record(0.5, True)  # no error, but over threshold
        assert tracker.snapshot()["bad"] == 1

    def test_windows_age_out_but_lifetime_totals_do_not(self):
        clock = FakeClock()
        policy = SLOPolicy(
            threshold_seconds=0.1,
            fast_window_seconds=10.0,
            slow_window_seconds=60.0,
        )
        tracker = SLOTracker(policy, clock=clock)
        tracker.record(9.0, False)
        assert tracker.snapshot()["fast_burn_rate"] > 0
        clock.now += 30.0  # past the fast window, inside the slow one
        snap = tracker.snapshot()
        assert snap["fast_burn_rate"] == 0.0
        assert snap["slow_burn_rate"] > 0
        assert snap["bad"] == 1  # lifetime totals never reset

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(objective=1.0)
        with pytest.raises(ValueError):
            SLOPolicy(threshold_seconds=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(fast_window_seconds=600.0, slow_window_seconds=60.0)

    def test_merge_takes_worst_shard_burn(self):
        clock = FakeClock()
        quiet = SLOTracker(clock=clock)
        burning = SLOTracker(clock=clock)
        quiet.record(0.01, True)
        burning.record(9.0, False)
        merged = merge_slo_snapshots([quiet.snapshot(), burning.snapshot()])
        assert merged["good"] == 1 and merged["bad"] == 1
        assert merged["fast_burn_rate"] == burning.snapshot()["fast_burn_rate"]
        assert merge_slo_snapshots([]) is None
        assert merge_slo_snapshots([{}, {}]) is None


# ---------------------------------------------------------------------------
# Flush registry
# ---------------------------------------------------------------------------


class TestFlushRegistry:
    def test_flush_runs_exactly_once_in_fifo_order(self):
        flushers = FlushRegistry()
        ran = []
        flushers.register("first", lambda: ran.append("first"))
        flushers.register("second", lambda: ran.append("second"))
        assert flushers.flush() == 2
        assert flushers.flush() == 0  # a second exit path is a no-op
        assert ran == ["first", "second"]
        assert flushers.flushed

    def test_one_broken_sink_does_not_stop_the_rest(self):
        flushers = FlushRegistry()
        ran = []
        flushers.register("broken", lambda: 1 / 0)
        flushers.register("healthy", lambda: ran.append("healthy"))
        assert flushers.flush() == 2
        assert ran == ["healthy"]
        assert len(flushers.errors) == 1 and "broken" in flushers.errors[0]

    def test_registering_after_flush_fails_loudly(self):
        flushers = FlushRegistry()
        flushers.flush()
        with pytest.raises(RuntimeError, match="already flushed"):
            flushers.register("late", lambda: None)


# ---------------------------------------------------------------------------
# Insights registry
# ---------------------------------------------------------------------------


def _feed(registry, template, n, base=0.010, work=100):
    for i in range(n):
        registry.record_phase(template, "decompose", base, work=7)
        registry.record_phase(template, "execute", base * (i + 1), work=work)
        registry.record_outcome(template, base * (i + 1), True)


class TestInsightsRegistry:
    def test_snapshot_shape(self):
        registry = InsightsRegistry(clock=FakeClock())
        _feed(registry, "T1", 3)
        registry.record_event("T1", "degraded", {"degraded_to": "width-1"})
        snap = registry.snapshot()
        entry = snap["templates"]["T1"]
        assert entry["queries"] == 3 and entry["errors"] == 0
        assert entry["events"] == {"degraded": 1}
        assert set(entry["phases"]) == {"decompose", "execute"}
        assert entry["phases"]["execute"]["latency"]["count"] == 3
        assert entry["phases"]["execute"]["work"]["total"] == 300.0
        assert entry["slo"]["good"] == 3
        assert snap["slow_log"]["events"][0]["kind"] == "degraded"

    def test_merge_parity_with_single_registry(self):
        clock = FakeClock()
        single = InsightsRegistry(clock=clock)
        shard_a = InsightsRegistry(clock=clock)
        shard_b = InsightsRegistry(clock=clock)
        _feed(single, "T1", 4)
        _feed(shard_a, "T1", 4)
        _feed(single, "T2", 2, base=0.020)
        _feed(shard_b, "T2", 2, base=0.020)
        merged = merge_insights_snapshots(
            [shard_a.snapshot(), shard_b.snapshot()]
        )
        expected = single.snapshot()
        for key in ("T1", "T2"):
            assert (
                merged["templates"][key]["phases"]
                == expected["templates"][key]["phases"]
            )
            assert (
                merged["templates"][key]["queries"]
                == expected["templates"][key]["queries"]
            )
        assert merge_insights_snapshots([]) == {}

    def test_overflow_folds_new_templates(self):
        registry = InsightsRegistry(clock=FakeClock(), max_templates=2)
        for name in ("T1", "T2", "T3", "T4"):
            registry.record_outcome(name, 0.01, True)
        snap = registry.snapshot()
        assert set(snap["templates"]) == {"T1", "T2", "(overflow)"}
        assert snap["templates"]["(overflow)"]["queries"] == 2

    def test_slow_capture_via_registry(self):
        registry = InsightsRegistry(slow_k=1, clock=FakeClock())
        assert registry.qualifies_slow("T1", 0.5)
        assert registry.record_slow("T1", 0.5, {"plan": "scan"})
        assert not registry.record_slow("T1", 0.1, {"plan": "cheap"})
        outliers = registry.snapshot()["slow_log"]["outliers"]["T1"]
        assert [e["plan"] for e in outliers] == ["scan"]

    def test_null_insights_is_inert(self):
        assert not NULL_INSIGHTS.enabled
        NULL_INSIGHTS.record_phase("T", "execute", 1.0, work=5)
        NULL_INSIGHTS.record_outcome("T", 1.0, False)
        NULL_INSIGHTS.record_event("T", "kind")
        assert not NULL_INSIGHTS.qualifies_slow("T", 99.0)
        assert not NULL_INSIGHTS.record_slow("T", 99.0, {})
        assert NULL_INSIGHTS.snapshot() == {}

    def test_prometheus_exposition(self):
        registry = InsightsRegistry(clock=FakeClock())
        _feed(registry, 'T"1', 2)
        text = render_insights_prometheus(registry.snapshot())
        assert 'hdqo_template_queries_total{template="T\\"1"} 2' in text
        assert 'window="fast"' in text and 'window="slow"' in text
        assert 'phase="execute",quantile="p99"' in text
        # An empty snapshot still renders the metric headers.
        assert "# TYPE hdqo_slo_burn_rate gauge" in (
            render_insights_prometheus({})
        )


# ---------------------------------------------------------------------------
# Service integration: zero work-unit cost when disabled
# ---------------------------------------------------------------------------


def _tiny_db():
    rng = random.Random(0)
    from repro.relational import AttributeType, Database, RelationSchema

    db = Database("pair")
    for i in range(2):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(6), rng.randrange(6)) for _ in range(30)]
        )
    db.analyze()
    return db


PAIR_SQL = "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {c}"


class TestServiceIntegration:
    def _run(self, insights):
        service = QueryService(
            SimulatedDBMS(_tiny_db(), COMMDB_PROFILE),
            max_width=2,
            workers=2,
            insights=insights,
        )
        try:
            queries = [PAIR_SQL.format(c=2 + (i % 3)) for i in range(6)]
            results = service.run_all(queries)
            return results, service.snapshot()
        finally:
            service.close()

    def test_insights_cost_zero_work_units(self):
        off_results, off_snapshot = self._run(insights=None)
        on_results, on_snapshot = self._run(insights=InsightsRegistry())
        assert [r.work for r in on_results] == [r.work for r in off_results]
        assert [
            sorted(r.relation.tuples) for r in on_results
        ] == [sorted(r.relation.tuples) for r in off_results]
        assert "insights" not in off_snapshot
        insights = on_snapshot["insights"]
        assert insights["templates"], "enabled run must observe templates"
        total = sum(
            entry["queries"] for entry in insights["templates"].values()
        )
        assert total == len(on_results)

    def test_execute_work_histogram_matches_results(self):
        _, snapshot = self._run(insights=InsightsRegistry())
        work_total = sum(
            entry["phases"]["execute"]["work"]["total"]
            for entry in snapshot["insights"]["templates"].values()
            if "execute" in entry["phases"]
        )
        queries = snapshot["queries"]
        assert queries["finished"] == 6
        assert work_total > 0


# ---------------------------------------------------------------------------
# Metrics: latency quantiles from the streaming histogram
# ---------------------------------------------------------------------------


class TestLatencyQuantiles:
    def test_latency_stat_quantiles_and_merge(self):
        left, right = LatencyStat(), LatencyStat()
        for v in (0.010, 0.020):
            left.observe(v)
        right.observe(0.500)
        left.merge(right)
        snap = left.snapshot()
        assert snap["count"] == 3
        assert snap["p50"] == quantile_from_snapshot(snap["hdr"], 0.50)
        assert 0.02 <= snap["p50"] < 0.03
        assert snap["p99"] >= 0.5
        # The pre-existing summary fields are still there, unchanged.
        assert {"count", "total", "mean", "min", "max"} <= set(snap)

    def test_service_metrics_snapshot_has_quantiles(self):
        metrics = ServiceMetrics()
        metrics.record_query(finished=True, work=10, seconds=0.25)
        latency = metrics.snapshot()["latency_seconds"]
        assert latency["count"] == 1
        assert latency["p50"] == latency["p99"] > 0.25
        assert latency["hdr"]["count"] == 1


class TestAggregateMergeSpecialCases:
    def test_hdr_merges_exactly_and_quantiles_recompute(self):
        shards = []
        single = LatencyStat()
        for values in ((0.010, 0.040), (0.080, 0.120, 0.500)):
            stat = LatencyStat()
            for v in values:
                stat.observe(v)
                single.observe(v)
            shards.append({"latency_seconds": stat.snapshot()})
        merged = merge_metric_snapshots(shards)["latency_seconds"]
        expected = single.snapshot()
        assert merged["hdr"] == expected["hdr"]  # byte-identical buckets
        for q in ("p50", "p90", "p99"):
            assert merged[q] == expected[q]

    def test_insights_snapshots_merge_not_sum(self):
        clock = FakeClock()
        shards = []
        single = InsightsRegistry(clock=clock)
        for template in ("T1", "T2"):
            registry = InsightsRegistry(clock=clock)
            _feed(registry, template, 3)
            _feed(single, template, 3)
            shards.append({"insights": registry.snapshot()})
        merged = merge_metric_snapshots(shards)["insights"]
        expected = single.snapshot()
        assert merged["templates"] == expected["templates"]
        # The generic numeric sum would have doubled "slow_k"; the
        # special-cased merge must keep it a configuration value.
        assert merged["slow_k"] == expected["slow_k"]


# ---------------------------------------------------------------------------
# hdqo top
# ---------------------------------------------------------------------------


def _top_payload():
    registry = InsightsRegistry(clock=FakeClock())
    _feed(registry, "SELECT-chain", 5)
    registry.record_event("SELECT-chain", "degraded")
    return {
        "service": {
            "queries": 5,
            "cache_hit_rate": 0.8,
            "saturation": 0.25,
            "shards": 4,
        },
        "insights": registry.snapshot(),
    }


class TestTop:
    def test_publish_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        payload = _top_payload()
        publish_snapshot_file(path, payload)
        loaded = load_snapshot_file(path)
        assert loaded["service"]["shards"] == 4
        assert "SELECT-chain" in loaded["insights"]["templates"]
        assert not (tmp_path / "snapshot.json.tmp").exists()

    def test_load_missing_or_torn_returns_none(self, tmp_path):
        assert load_snapshot_file(str(tmp_path / "missing.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"service": {')
        assert load_snapshot_file(str(torn)) is None
        not_object = tmp_path / "list.json"
        not_object.write_text("[1, 2]")
        assert load_snapshot_file(str(not_object)) is None

    def test_render_top_frame(self):
        frame = render_top(_top_payload())
        assert "SELECT-chain" in frame
        assert "cache-hit=80.0%" in frame
        assert "shards=4" in frame
        assert "degraded template=SELECT-chain" in frame
        assert "\x1b" not in frame  # plain text, no escape codes

    def test_render_top_empty_payload(self):
        frame = render_top({})
        assert "no template traffic" in frame
        assert "saturation=-" in frame  # missing fields render as dashes

    def test_run_top_non_tty_renders_exactly_one_frame(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        publish_snapshot_file(path, _top_payload())
        out = io.StringIO()
        sleeps = []
        code = run_top(
            path, interval=0.5, stream=out, is_tty=False,
            sleep=sleeps.append,
        )
        assert code == 0
        assert sleeps == []  # one frame, no polling loop
        assert out.getvalue().count("hdqo top —") == 1

    def test_run_top_without_snapshot_fails(self, tmp_path):
        out = io.StringIO()
        code = run_top(
            str(tmp_path / "never.json"), stream=out, is_tty=False,
        )
        assert code == 1
        assert "no snapshot" in out.getvalue()

    def test_run_top_tty_polls_for_iterations(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        publish_snapshot_file(path, _top_payload())
        out = io.StringIO()
        sleeps = []
        code = run_top(
            path, interval=0.25, iterations=3, stream=out, is_tty=True,
            sleep=sleeps.append,
        )
        assert code == 0
        assert sleeps == [0.25, 0.25]
        assert out.getvalue().count("hdqo top —") == 3


# ---------------------------------------------------------------------------
# hdqo report
# ---------------------------------------------------------------------------


def _serving_spans(execute_seconds, errors=0, cache_hits=True, n=8):
    """A synthetic but contract-valid serving trace for one template."""
    records = []
    span_id = 0
    for i in range(n):
        records.append({
            "span_id": span_id,
            "parent_id": None,
            "name": "serve.plan",
            "start": 0.1 * i,
            "duration": 0.002,
            "work_units": 0,
            "tags": {
                "template": "chain-template",
                "plan_units": 40,
                "cache_hit": cache_hits and i > 0,
            },
        })
        records.append({
            "span_id": span_id + 1,
            "parent_id": span_id,
            "name": "decompose.optimize",
            "start": 0.1 * i,
            "duration": 0.001,
            "work_units": 12,
            "tags": {},
        })
        execute_tags = {"template": "chain-template"}
        if i < errors:
            execute_tags["error"] = "WorkBudgetExceeded"
        records.append({
            "span_id": span_id + 2,
            "parent_id": None,
            "name": "serve.execute",
            "start": 0.1 * i + 0.01,
            "duration": execute_seconds,
            "work_units": 250,
            "tags": execute_tags,
        })
        span_id += 3
    return records


def _write_jsonl(path, records):
    path.write_text(
        "".join(json.dumps(record) + "\n" for record in records)
    )
    return str(path)


class TestReport:
    def test_load_span_records_reports_problems(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            json.dumps({"span_id": 1, "name": "serve.plan", "duration": 0.1,
                        "tags": {"template": "t"}})
            + "\nnot json\n"
            + json.dumps({"no_span_id": True})
            + "\n\n"
        )
        records, problems = load_span_records(str(path))
        assert len(records) == 1
        assert len(problems) == 2
        missing, missing_problems = load_span_records(
            str(tmp_path / "absent.jsonl")
        )
        assert missing == [] and len(missing_problems) == 1

    def test_analyze_reconstructs_phases(self, tmp_path):
        records = _serving_spans(execute_seconds=0.004)
        analysis = analyze_spans(records)
        assert analysis["problems"] == []
        entry = analysis["templates"]["chain-template"]
        assert entry["queries"] == 8
        assert entry["plans"] == 8 and entry["cache_hits"] == 7
        assert set(entry["phases"]) == {"decompose", "optimize", "execute"}
        execute = entry["phases"]["execute"]
        assert execute["latency"]["count"] == 8
        assert execute["work"]["total"] == 8 * 250.0
        # optimize spans attribute through the parent serve.plan span
        assert entry["phases"]["optimize"]["work"]["total"] == 8 * 12.0

    def test_untagged_serving_spans_are_a_problem(self):
        records = [{
            "span_id": 0, "parent_id": None, "name": "serve.execute",
            "start": 0.0, "duration": 0.01, "work_units": 1, "tags": {},
        }]
        analysis = analyze_spans(records)
        assert any("attribution" in p for p in analysis["problems"])

    def test_clean_run_passes_committed_baseline(self, tmp_path):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_serving.json").read_text()
        )
        records = _serving_spans(execute_seconds=0.004)
        analysis = analyze_spans(records)
        flags, warnings = check_baseline(analysis, baseline)
        assert flags == []

    def test_seeded_regression_is_flagged(self):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_serving.json").read_text()
        )
        p99_s = baseline["sharded"]["latency_p99_ms"] / 1000.0
        seeded = analyze_spans(
            _serving_spans(execute_seconds=p99_s * 20, errors=2,
                           cache_hits=False)
        )
        flags, _ = check_baseline(seeded, baseline)
        assert any("latency regression" in flag for flag in flags)
        assert any("error regression" in flag for flag in flags)
        assert any("cache amortization" in flag for flag in flags)

    def test_tolerance_is_respected(self):
        baseline = {
            "benchmark": "sharded-serving",
            "sharded": {"latency_p50_ms": 1.0, "latency_p99_ms": 10.0,
                        "errors": 0},
        }
        analysis = analyze_spans(_serving_spans(execute_seconds=0.050))
        strict, _ = check_baseline(analysis, baseline, tolerance=2.0)
        loose, _ = check_baseline(analysis, baseline, tolerance=100.0)
        assert any("latency regression" in f for f in strict)
        assert not any("latency regression" in f for f in loose)

    def test_render_report_text(self):
        analysis = analyze_spans(_serving_spans(execute_seconds=0.004))
        clean = render_report(analysis, flags=[], warnings=[])
        assert "chain-template" in clean
        assert "baseline comparison: clean" in clean
        flagged = render_report(
            analysis, flags=["latency regression: ..."],
            warnings=["baseline record is unstamped"],
        )
        assert "REGRESSIONS FLAGGED" in flagged
        assert "warning: baseline record is unstamped" in flagged


class TestReportCli:
    def test_cli_report_clean_and_seeded(self, tmp_path, capsys):
        from repro.cli import main

        clean = _write_jsonl(
            tmp_path / "clean.jsonl", _serving_spans(execute_seconds=0.004)
        )
        baseline = str(REPO_ROOT / "BENCH_serving.json")
        assert main(["report", clean, "--baseline", baseline]) == 0
        assert "chain-template" in capsys.readouterr().out

        seeded = _write_jsonl(
            tmp_path / "seeded.jsonl",
            _serving_spans(execute_seconds=5.0, errors=3, cache_hits=False),
        )
        assert main(["report", seeded, "--baseline", baseline]) == 1
        assert "REGRESSIONS FLAGGED" in capsys.readouterr().out

    def test_cli_report_bad_baseline(self, tmp_path, capsys):
        from repro.cli import main

        spans = _write_jsonl(
            tmp_path / "spans.jsonl", _serving_spans(execute_seconds=0.004)
        )
        assert main(["report", spans, "--baseline",
                     str(tmp_path / "missing.json")]) == 1
        not_object = tmp_path / "list.json"
        not_object.write_text("[]\n")
        assert main(["report", spans, "--baseline", str(not_object)]) == 1

    def test_cli_top_non_tty(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "snapshot.json")
        publish_snapshot_file(path, _top_payload())
        assert main(["top", path, "--iterations", "1"]) == 0
        assert "SELECT-chain" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Sharded serving: merged insights byte-identical to one process
# ---------------------------------------------------------------------------


def _chain_db():
    rng = random.Random(0)
    from repro.relational import AttributeType, Database, RelationSchema

    db = Database("chain4")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(8), rng.randrange(8)) for _ in range(40)]
        )
    db.analyze()
    return db


CLUSTER_TEMPLATES = [
    "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {c}",
    "SELECT r2.a2, r3.a3 FROM r2, r3 WHERE r2.b2 = r3.a3 AND r2.a2 < {c}",
    "SELECT r1.a1 FROM r1, r2 WHERE r1.b1 = r2.a2 AND r1.a1 < {c}",
]


@pytest.fixture(scope="module")
def insights_cluster():
    """One 2-shard run with ``insights=True`` + its single-process twin."""
    from repro.shard import ShardConfig, ShardRouter

    database = _chain_db()
    queries = [
        template.format(c=2 + (rep % 3))
        for rep in range(4)
        for template in CLUSTER_TEMPLATES
    ]

    single = QueryService(
        SimulatedDBMS(database, COMMDB_PROFILE),
        max_width=2,
        workers=2,
        insights=InsightsRegistry(),
    )
    try:
        single_results = single.run_all(queries)
        single_snapshot = single.snapshot()
    finally:
        single.close()

    config = ShardConfig(
        database=database, max_width=2, workers=2, insights=True
    )
    router = ShardRouter(config, shards=2)
    sharded_results = router.run_all(queries)
    drained = router.drain(grace_seconds=30.0)
    final = router.final_snapshot()
    return {
        "queries": queries,
        "single_results": single_results,
        "single_insights": single_snapshot["insights"],
        "sharded_results": sharded_results,
        "merged_insights": final["merged"]["insights"],
        "drained": drained,
    }


class TestShardedInsightsParity:
    def test_cluster_drained_and_answers_match(self, insights_cluster):
        assert insights_cluster["drained"]
        for single, sharded in zip(
            insights_cluster["single_results"],
            insights_cluster["sharded_results"],
        ):
            assert single.relation.tuples == sharded.relation.tuples
            assert single.work == sharded.work

    def test_merged_work_histograms_are_byte_identical(self, insights_cluster):
        """The acceptance bar: per-template work histograms, merged across
        shards, equal a single process's — exactly, bucket for bucket.
        (Latency histograms are wall-clock and legitimately differ.)"""
        merged = insights_cluster["merged_insights"]["templates"]
        expected = insights_cluster["single_insights"]["templates"]
        assert set(merged) == set(expected)
        assert len(merged) == len(CLUSTER_TEMPLATES)
        for key, entry in expected.items():
            assert set(merged[key]["phases"]) == set(entry["phases"])
            for phase, data in entry["phases"].items():
                assert merged[key]["phases"][phase]["work"] == data["work"], (
                    f"template {key} phase {phase} work histogram diverged"
                )

    def test_merged_counters_match_single_process(self, insights_cluster):
        merged = insights_cluster["merged_insights"]["templates"]
        expected = insights_cluster["single_insights"]["templates"]
        for key, entry in expected.items():
            assert merged[key]["queries"] == entry["queries"]
            assert merged[key]["errors"] == entry["errors"]
            assert merged[key]["events"] == entry["events"]

    def test_latency_histograms_share_geometry_and_counts(
        self, insights_cluster
    ):
        merged = insights_cluster["merged_insights"]["templates"]
        expected = insights_cluster["single_insights"]["templates"]
        for key, entry in expected.items():
            for phase, data in entry["phases"].items():
                latency = merged[key]["phases"][phase]["latency"]
                for field in ("scale", "lo", "hi", "count"):
                    assert latency[field] == data["latency"][field]


# ---------------------------------------------------------------------------
# Bench-record provenance
# ---------------------------------------------------------------------------


class TestBenchRecord:
    def test_stamp_adds_provenance(self):
        from repro.bench.record import stamp_record

        record = {"benchmark": "parallel-qhd-evaluation"}
        stamp_record(record, sha="a" * 40)
        assert record["git_sha"] == "a" * 40
        assert record["recorded_at"].endswith("Z")

    def test_validate_accepts_a_stamped_serving_record(self):
        from repro.bench.record import stamp_record, validate_record

        record = {
            "benchmark": "sharded-serving",
            "scale": "quick", "shards": 4,
            "baseline": {}, "parity": {}, "hit_rate_ok": True,
            "sharded": {"latency_p50_ms": 1.0, "latency_p99_ms": 2.0,
                        "errors": 0},
        }
        stamp_record(record, sha="b" * 40)
        assert validate_record(record) == []

    def test_validate_flags_schema_problems(self):
        from repro.bench.record import validate_record

        assert validate_record({}) == ["missing 'benchmark' name"]
        assert validate_record({"benchmark": "nope"}) == [
            "unknown benchmark kind 'nope'"
        ]
        problems = validate_record({
            "benchmark": "sharded-serving",
            "scale": "quick", "shards": 1, "baseline": {}, "parity": {},
            "hit_rate_ok": True, "sharded": {},
            "git_sha": "short", "recorded_at": "not-a-date",
        })
        assert any("latency_p99_ms" in p for p in problems)
        assert any("40-char SHA" in p for p in problems)
        assert any("ISO-8601" in p for p in problems)

    def test_committed_baseline_parses_without_stamp(self):
        from repro.bench.record import validate_record

        baseline = json.loads(
            (REPO_ROOT / "BENCH_serving.json").read_text()
        )
        assert validate_record(baseline, require_stamp=False) == []

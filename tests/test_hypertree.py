"""Tests for the hypertree structure and decomposition condition checkers."""

import pytest

from repro.errors import DecompositionError
from repro.hypergraph import Hypergraph
from repro.core.hypertree import Hypertree, HypertreeNode, make_node


@pytest.fixture()
def triangle():
    """The cyclic triangle hypergraph ab–bc–ca."""
    return Hypergraph.from_dict(
        {"ab": ["A", "B"], "bc": ["B", "C"], "ca": ["C", "A"]}
    )


def width2_triangle_tree(hg):
    """A valid width-2 hypertree decomposition of the triangle."""
    child = make_node(chi=["B", "C"], lam=["bc"])
    root = make_node(chi=["A", "B", "C"], lam=["ab", "ca"], children=[child])
    return Hypertree(root, hg)


class TestStructure:
    def test_width_and_size(self, triangle):
        tree = width2_triangle_tree(triangle)
        assert tree.width == 2
        assert len(tree) == 2

    def test_unknown_edge_rejected(self, triangle):
        with pytest.raises(DecompositionError):
            Hypertree(make_node(["A"], ["zzz"]), triangle)

    def test_walk_and_postorder(self, triangle):
        tree = width2_triangle_tree(triangle)
        pre = [n.lam for n in tree.root.walk()]
        post = [n.lam for n in tree.root.postorder()]
        assert pre[0] == ("ab", "ca")
        assert post[-1] == ("ab", "ca")

    def test_subtree_chi(self, triangle):
        tree = width2_triangle_tree(triangle)
        assert tree.root.subtree_chi() == frozenset({"A", "B", "C"})

    def test_clone_is_deep(self, triangle):
        tree = width2_triangle_tree(triangle)
        copy = tree.clone()
        copy.root.lam = ()
        assert tree.root.lam == ("ab", "ca")

    def test_clone_relinks_guards(self, triangle):
        tree = width2_triangle_tree(triangle)
        tree.root.guards["ab"] = tree.root.children[0]
        copy = tree.clone()
        assert copy.root.guards["ab"] is copy.root.children[0]

    def test_atom_occurrences(self, triangle):
        tree = width2_triangle_tree(triangle)
        occ = tree.atom_occurrences()
        assert len(occ["ab"]) == 1
        assert len(occ["bc"]) == 1

    def test_render_contains_labels(self, triangle):
        text = width2_triangle_tree(triangle).render()
        assert "λ={ab, ca}" in text
        assert "χ={A, B, C}" in text

    def test_ordered_children_guards_first(self, triangle):
        a = make_node(["A"], ["ab"])
        b = make_node(["B"], ["bc"])
        root = make_node(["A", "B"], ["ab"], children=[a, b])
        root.guards["x"] = b
        assert root.ordered_children() == [b, a]


class TestConditions:
    def test_valid_decomposition(self, triangle):
        tree = width2_triangle_tree(triangle)
        assert tree.covers_all_edges()
        assert tree.satisfies_connectedness()
        assert tree.chi_covered_by_lambda()
        assert tree.satisfies_special_condition()
        assert tree.is_hypertree_decomposition()
        assert tree.is_generalized_hypertree_decomposition()

    def test_uncovered_edge_detected(self, triangle):
        root = make_node(chi=["A", "B"], lam=["ab"])
        tree = Hypertree(root, triangle)
        assert set(tree.uncovered_edges()) == {"bc", "ca"}
        assert not tree.covers_all_edges()

    def test_connectedness_violation(self, triangle):
        # A appears at the root and a grandchild, but not in between.
        grandchild = make_node(chi=["A", "C"], lam=["ca"])
        child = make_node(chi=["B", "C"], lam=["bc"], children=[grandchild])
        root = make_node(chi=["A", "B"], lam=["ab"], children=[child])
        tree = Hypertree(root, triangle)
        assert not tree.satisfies_connectedness()

    def test_chi_not_covered_by_lambda(self, triangle):
        root = make_node(chi=["A", "B", "C"], lam=["ab"])
        tree = Hypertree(root, triangle)
        assert not tree.chi_covered_by_lambda()

    def test_special_condition_violation(self, triangle):
        # λ(root) mentions C (via ca) but χ(root) omits it, while C occurs
        # in the subtree below: var(λ(p)) ∩ χ(T_p) ⊄ χ(p).
        child = make_node(chi=["B", "C"], lam=["bc"])
        root = make_node(chi=["A", "B"], lam=["ab", "ca"], children=[child])
        tree = Hypertree(root, triangle)
        assert not tree.satisfies_special_condition()
        assert not tree.is_hypertree_decomposition()

    def test_qhd_conditions(self, triangle):
        tree = width2_triangle_tree(triangle)
        assert tree.is_q_hypertree_decomposition({"A", "B"})
        assert tree.is_q_hypertree_decomposition({"B", "C"})  # child covers
        assert tree.is_q_hypertree_decomposition({"A", "B", "C"})  # root covers
        assert not tree.is_q_hypertree_decomposition({"A", "Z"})  # Z nowhere

    def test_qhd_allows_chi_beyond_lambda(self, triangle):
        # Definition 2 drops condition 3 of Definition 1.
        child = make_node(chi=["B", "C"], lam=["bc"])
        grandchild = make_node(chi=["A", "C"], lam=["ca"])
        child.add_child(grandchild)
        root = make_node(chi=["A", "B"], lam=["ab"], children=[child])
        tree = Hypertree(root, triangle)
        # cyclic connectedness broken here (A at root and grandchild)
        assert not tree.is_q_hypertree_decomposition({"A"})

    def test_output_cover_node_prefers_root(self, triangle):
        tree = width2_triangle_tree(triangle)
        assert tree.output_cover_node({"B", "C"}) is tree.root
        assert tree.output_cover_node({"Z"}) is None

    def test_output_cover_node_falls_back_to_descendant(self, triangle):
        child = make_node(chi=["B", "C"], lam=["bc"])
        root = make_node(chi=["A", "B"], lam=["ab"], children=[child])
        tree = Hypertree(root, triangle)
        assert tree.output_cover_node({"C"}) is child

"""Tests for hinge decompositions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import Hypergraph, cycle_hypergraph, line_hypergraph
from repro.hypergraph.hinges import (
    HingeTree,
    degree_of_cyclicity,
    hinge_decomposition,
)


class TestStructure:
    def test_line_splits_into_pairs(self):
        tree = hinge_decomposition(line_hypergraph(6))
        assert tree.covers_all_edges()
        assert tree.adjacent_blocks_share_one_edge()
        # GJC: acyclic hypergraphs have degree of cyclicity ≤ 2.
        assert tree.degree_of_cyclicity <= 2

    def test_cycle_is_one_unsplittable_hinge(self):
        for n in (4, 6, 8):
            tree = hinge_decomposition(cycle_hypergraph(n, private=0))
            assert tree.degree_of_cyclicity == n
            assert len(tree.nodes()) == 1

    def test_cycle_with_pendant_tail(self):
        hg = Hypergraph.from_dict(
            {
                "c1": ["A", "B"],
                "c2": ["B", "C"],
                "c3": ["C", "A"],
                "tail1": ["A", "T1"],
                "tail2": ["T1", "T2"],
            }
        )
        tree = hinge_decomposition(hg)
        assert tree.covers_all_edges()
        assert tree.adjacent_blocks_share_one_edge()
        # The triangle survives as a 3-hinge; the tail splits off.
        assert tree.degree_of_cyclicity == 3

    def test_two_cycles_sharing_an_edge(self):
        hg = Hypergraph.from_dict(
            {
                "ab": ["A", "B"], "bc": ["B", "C"], "ca": ["C", "A"],
                "ad": ["A", "D"], "de": ["D", "E"], "ea": ["E", "A"],
            }
        )
        tree = hinge_decomposition(hg)
        assert tree.covers_all_edges()
        # Each triangle is (at worst) its own hinge.
        assert tree.degree_of_cyclicity <= 4

    def test_single_edge(self):
        assert degree_of_cyclicity(Hypergraph.from_dict({"a": ["X"]})) == 1

    def test_two_edges(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"], "b": ["Y", "Z"]})
        assert degree_of_cyclicity(hg) == 2

    def test_empty(self):
        assert degree_of_cyclicity(Hypergraph()) == 0
        with pytest.raises(HypergraphError):
            hinge_decomposition(Hypergraph())

    def test_render(self):
        tree = hinge_decomposition(line_hypergraph(4))
        text = tree.render()
        assert "{" in text and "via" in text


class TestRelationToOtherWidths:
    def test_hypertree_width_never_exceeds_degree(self):
        # hw ≤ degree of cyclicity (hinge trees are a special case).
        from repro.core.detkdecomp import hypertree_width

        cases = [
            line_hypergraph(5),
            cycle_hypergraph(5, private=0),
            Hypergraph.from_dict(
                {"a": ["X", "Y"], "b": ["Y", "Z"], "c": ["Z", "X"], "d": ["X", "W"]}
            ),
        ]
        for hg in cases:
            assert hypertree_width(hg) <= max(degree_of_cyclicity(hg), 1)

    def test_the_motivating_gap(self):
        # Cycles: hinge degree grows with n, hypertree width stays 2.
        from repro.core.detkdecomp import hypertree_width

        hg = cycle_hypergraph(8, private=0)
        assert degree_of_cyclicity(hg) == 8
        assert hypertree_width(hg) == 2


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=10))
def test_property_lines_have_degree_at_most_2(n):
    tree = hinge_decomposition(line_hypergraph(n))
    assert tree.degree_of_cyclicity <= 2
    assert tree.covers_all_edges()
    assert tree.adjacent_blocks_share_one_edge()


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=8),
    tail=st.integers(min_value=0, max_value=4),
)
def test_property_cycle_with_tails(n, tail):
    edges = {f"c{i}": [f"V{i}", f"V{(i + 1) % n}"] for i in range(n)}
    for t in range(tail):
        edges[f"t{t}"] = [f"V0" if t == 0 else f"T{t - 1}", f"T{t}"]
    hg = Hypergraph.from_dict(edges)
    tree = hinge_decomposition(hg)
    assert tree.covers_all_edges()
    assert tree.adjacent_blocks_share_one_edge()
    assert tree.degree_of_cyclicity == n

"""Tests for the cost model and cost-k-decomp."""

import pytest

from repro.errors import DecompositionError
from repro.hypergraph import Hypergraph, cycle_hypergraph, line_hypergraph
from repro.query.builder import ConjunctiveQueryBuilder
from repro.core.costmodel import (
    AtomEstimate,
    DecompositionCostModel,
    JoinEstimate,
)
from repro.core.costkdecomp import cost_k_decomp
from repro.core.detkdecomp import det_k_decomp


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output("V0").build()


class TestCostModel:
    def test_uniform_model(self):
        q = chain_query(3)
        model = DecompositionCostModel.uniform(q, cardinality=500, distinct=100)
        est = model.estimate_for("p0")
        assert est.cardinality == 500
        assert est.distinct_of("V0") == 100

    def test_missing_atom_rejected(self):
        q = chain_query(3)
        model = DecompositionCostModel.uniform(q)
        with pytest.raises(DecompositionError):
            model.estimate_for("zzz")

    def test_join_estimate_formula(self):
        left = JoinEstimate(1000, {"X": 100, "Y": 50})
        right = JoinEstimate(2000, {"X": 200, "Z": 10})
        joined = DecompositionCostModel.join(left, right, ["X"])
        # |L|·|R| / max(V(L,X), V(R,X)) = 1000·2000/200
        assert joined.cardinality == pytest.approx(10_000)
        assert joined.distinct["X"] == 100  # min of the two
        assert joined.distinct["Y"] == 50
        assert joined.distinct["Z"] == 10

    def test_cross_join_estimate(self):
        left = JoinEstimate(10, {"X": 5})
        right = JoinEstimate(20, {"Y": 4})
        joined = DecompositionCostModel.join(left, right, [])
        assert joined.cardinality == 200

    def test_projection_bounded_by_distincts(self):
        est = JoinEstimate(1_000_000, {"X": 10, "Y": 5})
        model = DecompositionCostModel({})
        projected = model.project(est, ["X", "Y"])
        assert projected.cardinality <= 50

    def test_join_sequence_smallest_first(self):
        model = DecompositionCostModel({})
        estimates = [JoinEstimate(1000, {"X": 10}), JoinEstimate(10, {"X": 10})]
        variables = [frozenset({"X"}), frozenset({"X"})]
        final, cost = model.join_sequence(estimates, variables)
        assert final.cardinality == pytest.approx(1000.0)
        assert cost > 0

    def test_empty_join_sequence(self):
        model = DecompositionCostModel({})
        final, cost = model.join_sequence([], [])
        assert final.cardinality == 1.0
        assert cost == 0.0

    def test_stitch_cost_positive(self):
        parent = JoinEstimate(100, {"X": 10})
        child = JoinEstimate(50, {"X": 10})
        assert DecompositionCostModel.stitch_cost(parent, child) > 0


class TestCostKDecomp:
    def test_finds_same_width_as_det(self):
        q = chain_query(6)
        hg = q.hypergraph()
        model = DecompositionCostModel.uniform(q)
        result = cost_k_decomp(hg, 2, model)
        assert result is not None
        tree, cost = result
        assert tree.width <= 2
        assert tree.is_hypertree_decomposition()
        assert cost > 0

    def test_failure_matches_det(self):
        q = chain_query(5)
        hg = q.hypergraph()
        model = DecompositionCostModel.uniform(q)
        assert cost_k_decomp(hg, 1, model) is None
        assert det_k_decomp(hg, 1) is None

    def test_deterministic(self):
        q = chain_query(6)
        hg = q.hypergraph()
        model = DecompositionCostModel.uniform(q)
        tree1, cost1 = cost_k_decomp(hg, 2, model)
        tree2, cost2 = cost_k_decomp(hg, 2, model)
        assert cost1 == cost2

        def shape(node):
            return (
                tuple(sorted(node.chi)),
                node.lam,
                tuple(shape(c) for c in node.children),
            )

        assert shape(tree1.root) == shape(tree2.root)

    def test_root_cover(self):
        q = chain_query(6)
        hg = q.hypergraph()
        model = DecompositionCostModel.uniform(q)
        tree, _ = cost_k_decomp(hg, 2, model, required_root_cover={"V0", "V1"})
        assert {"V0", "V1"} <= tree.root.chi

    def test_statistics_steer_the_choice(self):
        # Two ways to cover the triangle; make one atom enormous and check
        # the search avoids joining it twice.
        q = (
            ConjunctiveQueryBuilder("t")
            .atom("big", "rbig", "A", "B")
            .atom("s1", "r1", "B", "C")
            .atom("s2", "r2", "C", "A")
            .output("A")
            .build()
        )
        hg = q.hypergraph()
        expensive = DecompositionCostModel(
            {
                "big": AtomEstimate(10_000, {"A": 100, "B": 100}),
                "s1": AtomEstimate(10, {"B": 10, "C": 10}),
                "s2": AtomEstimate(10, {"C": 10, "A": 10}),
            }
        )
        tree, cost = cost_k_decomp(hg, 2, expensive, required_root_cover={"A"})
        # The big atom is joined at most once — the search may even cover
        # its edge purely through χ and leave the join to atom assignment.
        occurrences = sum(node.lam.count("big") for node in tree.root.walk())
        assert occurrences <= 1

    def test_invalid_k(self):
        q = chain_query(3)
        model = DecompositionCostModel.uniform(q)
        with pytest.raises(DecompositionError):
            cost_k_decomp(q.hypergraph(), 0, model)

    def test_unknown_cover_variable(self):
        q = chain_query(3)
        model = DecompositionCostModel.uniform(q)
        with pytest.raises(DecompositionError):
            cost_k_decomp(q.hypergraph(), 2, model, required_root_cover={"ZZ"})

    def test_cheaper_model_gives_lower_or_equal_cost(self):
        q = chain_query(5)
        hg = q.hypergraph()
        small = DecompositionCostModel.uniform(q, cardinality=10, distinct=5)
        large = DecompositionCostModel.uniform(q, cardinality=1000, distinct=5)
        _, cost_small = cost_k_decomp(hg, 2, small)
        _, cost_large = cost_k_decomp(hg, 2, large)
        assert cost_small < cost_large

"""Unit tests for the hypergraph data structure."""

import pytest

from repro.errors import HypergraphError
from repro.hypergraph import Hyperedge, Hypergraph
from repro.hypergraph.hypergraph import edge_subset_variables


class TestHyperedge:
    def test_basic_construction(self):
        edge = Hyperedge("r", ["X", "Y", "X"])
        assert edge.name == "r"
        assert edge.vertices == frozenset({"X", "Y"})
        assert len(edge) == 2

    def test_equality_is_by_name(self):
        assert Hyperedge("r", ["X"]) == Hyperedge("r", ["Y"])
        assert Hyperedge("r", ["X"]) != Hyperedge("s", ["X"])
        assert hash(Hyperedge("r", ["X"])) == hash(Hyperedge("r", ["Z"]))

    def test_contains_and_iter(self):
        edge = Hyperedge("r", ["A", "B"])
        assert "A" in edge
        assert "C" not in edge
        assert sorted(edge) == ["A", "B"]

    def test_intersects(self):
        edge = Hyperedge("r", ["A", "B"])
        assert edge.intersects({"B", "C"})
        assert not edge.intersects({"C", "D"})
        assert edge.intersects(["A"])

    def test_empty_name_rejected(self):
        with pytest.raises(HypergraphError):
            Hyperedge("", ["X"])

    def test_repr_sorted(self):
        assert repr(Hyperedge("r", ["B", "A"])) == "r(A, B)"


class TestHypergraph:
    def make(self):
        return Hypergraph.from_dict(
            {"a": ["X", "Y"], "b": ["Y", "Z"], "c": ["Z", "W", "X"]}
        )

    def test_vertices_and_edges(self):
        hg = self.make()
        assert hg.vertices == frozenset({"X", "Y", "Z", "W"})
        assert len(hg) == 3
        assert hg.edge_names == ("a", "b", "c")

    def test_duplicate_edge_name_rejected(self):
        hg = self.make()
        with pytest.raises(HypergraphError):
            hg.add_edge(Hyperedge("a", ["Q"]))

    def test_edge_lookup(self):
        hg = self.make()
        assert hg.edge("b").vertices == frozenset({"Y", "Z"})
        with pytest.raises(HypergraphError):
            hg.edge("missing")

    def test_membership(self):
        hg = self.make()
        assert "a" in hg
        assert Hyperedge("b", []) in hg
        assert "zzz" not in hg
        assert 42 not in hg

    def test_edges_with_vertex(self):
        hg = self.make()
        names = [e.name for e in hg.edges_with_vertex("Z")]
        assert names == ["b", "c"]
        with pytest.raises(HypergraphError):
            hg.edges_with_vertex("missing")

    def test_degree(self):
        hg = self.make()
        assert hg.degree("X") == 2
        assert hg.degree("W") == 1
        with pytest.raises(HypergraphError):
            hg.degree("missing")

    def test_variables_of(self):
        hg = self.make()
        assert hg.variables_of(["a", "b"]) == frozenset({"X", "Y", "Z"})
        assert hg.variables_of([]) == frozenset()

    def test_induced_subhypergraph(self):
        hg = self.make()
        sub = hg.induced(["a", "c"])
        assert len(sub) == 2
        assert sub.vertices == frozenset({"X", "Y", "Z", "W"})
        assert not sub.has_edge("b")

    def test_restrict_vertices(self):
        hg = self.make()
        restricted = hg.restrict_vertices({"X", "Y"})
        assert restricted.edge("a").vertices == frozenset({"X", "Y"})
        assert restricted.edge("c").vertices == frozenset({"X"})
        assert not restricted.has_edge("b") or restricted.edge("b").vertices

    def test_restrict_drops_empty_edges(self):
        hg = self.make()
        restricted = hg.restrict_vertices({"W"})
        assert [e.name for e in restricted] == ["c"]

    def test_covering_edges(self):
        hg = self.make()
        covers = [e.name for e in hg.covering_edges({"X", "Z"})]
        assert covers == ["c"]
        assert len(hg.covering_edges({"X"})) == 2

    def test_equality_and_hash(self):
        hg1 = self.make()
        hg2 = self.make()
        assert hg1 == hg2
        assert hash(hg1) == hash(hg2)
        hg3 = Hypergraph.from_dict({"a": ["X"]})
        assert hg1 != hg3

    def test_copy_preserves_content(self):
        hg = self.make()
        copy = hg.copy()
        assert copy == hg
        copy.add_edge(Hyperedge("d", ["V"]))
        assert len(hg) == 3

    def test_extra_vertices_and_isolated(self):
        hg = Hypergraph([Hyperedge("a", ["X"])], extra_vertices=["L"])
        assert "L" in hg.vertices
        assert hg.isolated_vertices() == frozenset({"L"})

    def test_edge_subset_variables(self):
        edges = [Hyperedge("a", ["X", "Y"]), Hyperedge("b", ["Z"])]
        assert edge_subset_variables(edges) == frozenset({"X", "Y", "Z"})

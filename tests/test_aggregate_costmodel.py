"""Tests for the aggregate-aware cost-model extension (paper's future work)."""

import pytest

from repro.core.costkdecomp import cost_k_decomp
from repro.core.costmodel import AtomEstimate, DecompositionCostModel
from repro.core.optimizer import HybridOptimizer
from repro.core.qhd import q_hypertree_decomp
from repro.query.builder import ConjunctiveQueryBuilder


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output("V0").build()


class TestOutputWeight:
    def test_zero_weight_is_baseline(self):
        q = chain_query(6)
        model = DecompositionCostModel.uniform(q)
        baseline = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"V0"}
        )
        weighted_zero = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"V0"}, output_weight=0.0
        )
        assert baseline[1] == weighted_zero[1]

    def test_positive_weight_increases_cost(self):
        q = chain_query(6)
        model = DecompositionCostModel.uniform(q)
        _, base_cost = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"V0"}
        )
        _, weighted_cost = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"V0"}, output_weight=5.0
        )
        assert weighted_cost > base_cost

    def test_qhd_accepts_weight(self):
        q = chain_query(5)
        tree = q_hypertree_decomp(q, 2, output_weight=2.0)
        assert tree.is_q_hypertree_decomposition(q.output_variables)

    def test_weight_can_change_the_chosen_root(self):
        # Two candidate roots for a triangle query; make one atom's answer
        # contribution huge so the aggregate term penalizes plans whose
        # root relation is large.
        q = (
            ConjunctiveQueryBuilder("t")
            .atom("big", "rbig", "A", "B")
            .atom("s1", "r1", "B", "C")
            .atom("s2", "r2", "C", "A")
            .output("A")
            .build()
        )
        model = DecompositionCostModel(
            {
                "big": AtomEstimate(5000, {"A": 5000, "B": 50}),
                "s1": AtomEstimate(50, {"B": 50, "C": 50}),
                "s2": AtomEstimate(50, {"C": 50, "A": 40}),
            }
        )
        tree_plain, cost_plain = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"A"}
        )
        tree_weighted, cost_weighted = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"A"}, output_weight=100.0
        )
        assert cost_weighted >= cost_plain


class TestHybridOptimizerIntegration:
    def test_include_aggregates_flag(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        plain = HybridOptimizer(tiny_tpch, max_width=3)
        weighted = HybridOptimizer(
            tiny_tpch, max_width=3, include_aggregates=True, aggregate_weight=2.0
        )
        p1 = plain.optimize(query_q5())
        p2 = weighted.optimize(query_q5())
        # Both must be valid q-HDs and produce identical answers.
        r1, r2 = p1.execute(), p2.execute()
        assert r1.relation.same_content(r2.relation)

    def test_no_effect_without_aggregates(self, chain_db, chain_sql):
        weighted = HybridOptimizer(
            chain_db, max_width=2, include_aggregates=True, aggregate_weight=10.0
        )
        plan = weighted.optimize(chain_sql)  # no aggregates in this query
        assert plan.execute().finished

"""Tests for the experiment harness and reporting."""

import pytest

from repro.bench.harness import DNF, ExperimentResult, RunRecord, run_with_budget
from repro.bench.reporting import render_series_table, render_speedup
from repro.bench.experiments import EXPERIMENTS, run_experiment, run_fig10, run_overhead


def record(system, point, work=100, finished=True, rows=5, group=""):
    extra = {"group": group} if group else {}
    return RunRecord(
        system=system,
        point=point,
        work=work,
        simulated_seconds=work * 1e-6,
        elapsed_seconds=0.01,
        finished=finished,
        answer_rows=rows,
        extra=extra,
    )


class TestRunRecord:
    def test_display_work(self):
        assert record("s", 1).display_work == "100"
        assert record("s", 1, finished=False).display_work == DNF


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("x", "Title")
        result.add(record("a", 1, work=10))
        result.add(record("b", 1, work=20))
        result.add(record("a", 2, work=30))
        result.add(record("b", 2, work=60, finished=False, rows=None))
        return result

    def test_systems_and_points_ordered(self):
        result = self.make()
        assert result.systems() == ["a", "b"]
        assert result.points() == [1, 2]

    def test_series_and_lookup(self):
        result = self.make()
        assert len(result.series("a")) == 2
        assert result.record_for("b", 1).work == 20
        assert result.record_for("zzz", 1) is None

    def test_consistency_ok(self):
        assert self.make().consistent_answers()

    def test_consistency_detects_mismatch(self):
        result = self.make()
        result.add(record("c", 1, rows=999))
        assert not result.consistent_answers()

    def test_consistency_respects_groups(self):
        result = ExperimentResult("x", "t")
        result.add(record("a", 1, rows=5, group="g1"))
        result.add(record("b", 1, rows=7, group="g2"))
        assert result.consistent_answers()


class TestRunWithBudget:
    def test_wraps_dbms_result(self, chain_db, chain_sql):
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        rec = run_with_budget(
            lambda: dbms.run_sql(chain_sql), system="commdb", point=4
        )
        assert rec.finished
        assert rec.work > 0
        assert rec.answer_rows is not None

    def test_dnf_wrapped(self, chain_db, chain_sql):
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        rec = run_with_budget(
            lambda: dbms.run_sql(chain_sql, work_budget=10), system="x", point=1
        )
        assert not rec.finished
        assert rec.answer_rows is None


class TestReporting:
    def test_series_table(self):
        result = ExperimentResult("x", "My Title")
        result.add(record("sysA", 2, work=10))
        result.add(record("sysB", 2, work=20, finished=False))
        text = render_series_table(result, point_label="atoms")
        assert "My Title" in text
        assert "sysA" in text
        assert DNF in text
        assert "atoms" in text

    def test_series_table_float_metric(self):
        result = ExperimentResult("x", "t")
        result.add(record("a", 1))
        text = render_series_table(result, metric="simulated_seconds")
        assert "0.000" in text

    def test_missing_cell_rendered_as_dash(self):
        result = ExperimentResult("x", "t")
        result.add(record("a", 1))
        result.add(record("b", 2))
        text = render_series_table(result)
        assert "-" in text

    def test_speedup(self):
        result = ExperimentResult("x", "t")
        result.add(record("base", 1, work=100))
        result.add(record("fast", 1, work=25))
        result.add(record("base", 2, work=100, finished=False))
        result.add(record("fast", 2, work=10))
        text = render_speedup(result, "base", "fast")
        assert "4.00×" in text
        assert "∞×" in text


class TestExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig7a", "fig7b", "fig7c", "fig7d",
            "fig8a", "fig8b", "fig9", "fig10", "overhead",
            "serving",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_fig10_runs_tiny(self):
        result = run_fig10(scale="quick", budget=2_000_000)
        assert result.records
        assert result.consistent_answers()
        # Optimize never does worse than no-Optimize.
        for point in result.points():
            with_opt = result.record_for("q-hd+optimize", point)
            without = result.record_for("q-hd-no-optimize", point)
            if with_opt.finished and without.finished:
                assert with_opt.work <= without.work

    def test_overhead_runs(self):
        result = run_overhead(scale="quick")
        analyze = result.series("analyze")
        decompose = result.series("decompose")
        assert len(analyze) == len(decompose) == 3
        # ANALYZE work grows with size; decomposition does not (work = 0,
        # wall time roughly constant).
        assert analyze[-1].work > analyze[0].work
        assert all(rec.work == 0 for rec in decompose)

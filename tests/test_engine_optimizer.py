"""Tests for DP join ordering, GEQO, and the syntactic baseline."""

import pytest

from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.geqo import GeqoOptimizer
from repro.engine.optimizer import JoinGraph, JoinOrderOptimizer, syntactic_plan
from repro.engine.plan import JoinNode, ScanNode, render_plan
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema


def make_db(tables):
    """tables: {name: (attrs, n_rows)} with integer data."""
    db = Database("opt")
    for name, (attrs, n_rows) in tables.items():
        schema = RelationSchema.of(
            name, {a: AttributeType.INT for a in attrs}
        )
        rows = [tuple(i % 7 for _ in attrs) for i in range(n_rows)]
        db.create_table(schema, rows)
    db.analyze()
    return db


@pytest.fixture()
def star_db():
    return make_db(
        {
            "fact": (["k1", "k2", "k3"], 1000),
            "dim1": (["k1", "a1"], 10),
            "dim2": (["k2", "a2"], 10),
            "dim3": (["k3", "a3"], 10),
        }
    )


def translate(db, sql):
    return sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())


STAR_SQL = """
SELECT dim1.a1 FROM fact, dim1, dim2, dim3
WHERE fact.k1 = dim1.k1 AND fact.k2 = dim2.k2 AND fact.k3 = dim3.k3
"""


class TestJoinGraph:
    def test_shared_variables(self, star_db):
        tr = translate(star_db, STAR_SQL)
        graph = JoinGraph(tr)
        shared = graph.shared_variables(frozenset({"fact"}), frozenset({"dim1"}))
        assert len(shared) == 1

    def test_connected_components(self, star_db):
        tr = translate(star_db, STAR_SQL)
        graph = JoinGraph(tr)
        assert len(graph.connected_components()) == 1

    def test_disconnected_components(self, star_db):
        tr = translate(
            star_db, "SELECT dim1.a1 FROM dim1, dim2"
        )
        graph = JoinGraph(tr)
        assert len(graph.connected_components()) == 2


class TestDP:
    @pytest.mark.parametrize("search", ["bushy", "leftdeep"])
    def test_produces_complete_plan(self, star_db, search):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), search).optimize()
        assert plan.aliases == frozenset({"fact", "dim1", "dim2", "dim3"})
        assert plan.join_count() == 3

    def test_no_cross_products_when_connected(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "bushy").optimize()
        for node in plan.walk():
            if isinstance(node, JoinNode):
                assert not node.is_cross_product

    def test_disconnected_gets_cross_join(self, star_db):
        tr = translate(star_db, "SELECT dim1.a1 FROM dim1, dim2")
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "bushy").optimize()
        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert len(joins) == 1 and joins[0].is_cross_product

    def test_leftdeep_is_left_deep(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "leftdeep").optimize()
        node = plan
        while isinstance(node, JoinNode):
            assert isinstance(node.right, ScanNode)
            node = node.left

    def test_invalid_search_space(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "zigzag")

    def test_estimates_annotated(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "bushy").optimize()
        assert all(node.estimated_rows > 0 for node in plan.walk())

    def test_single_relation(self, star_db):
        tr = translate(star_db, "SELECT dim1.a1 FROM dim1")
        ctx = EstimationContext.build(tr, star_db, True)
        plan = JoinOrderOptimizer(tr, CardinalityEstimator(ctx), "bushy").optimize()
        assert isinstance(plan, ScanNode)


class TestSyntactic:
    def test_follows_from_order(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = syntactic_plan(tr, CardinalityEstimator(ctx))
        # Left-deep with scans in FROM order: fact, dim1, dim2, dim3.
        scans = [n.alias for n in plan.walk() if isinstance(n, ScanNode)]
        assert scans == ["fact", "dim1", "dim2", "dim3"]

    def test_render(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        text = render_plan(syntactic_plan(tr, CardinalityEstimator(ctx)))
        assert "Scan(fact)" in text
        assert "HashJoin" in text


class TestGeqo:
    def test_deterministic_with_seed(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        est = CardinalityEstimator(ctx)
        p1 = GeqoOptimizer(tr, est, seed=7).optimize()
        p2 = GeqoOptimizer(tr, est, seed=7).optimize()
        assert render_plan(p1) == render_plan(p2)

    def test_covers_all_aliases(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = GeqoOptimizer(tr, CardinalityEstimator(ctx)).optimize()
        assert plan.aliases == frozenset({"fact", "dim1", "dim2", "dim3"})

    def test_avoids_cross_products_on_connected_graph(self, star_db):
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        plan = GeqoOptimizer(
            tr, CardinalityEstimator(ctx), generations=60, seed=1
        ).optimize()
        crosses = [
            n for n in plan.walk()
            if isinstance(n, JoinNode) and n.is_cross_product
        ]
        assert not crosses

    def test_single_relation(self, star_db):
        tr = translate(star_db, "SELECT dim1.a1 FROM dim1")
        ctx = EstimationContext.build(tr, star_db, True)
        plan = GeqoOptimizer(tr, CardinalityEstimator(ctx)).optimize()
        assert isinstance(plan, ScanNode)

    def test_geqo_quality_close_to_dp(self, star_db):
        # On a small star schema GEQO should find a plan whose estimated
        # cost is within a small factor of the DP optimum.
        tr = translate(star_db, STAR_SQL)
        ctx = EstimationContext.build(tr, star_db, True)
        est = CardinalityEstimator(ctx)
        geqo = GeqoOptimizer(tr, est, generations=80, seed=0)
        dp_plan = JoinOrderOptimizer(tr, est, "leftdeep").optimize()
        geqo_plan = geqo.optimize()
        dp_cost = geqo._fitness(
            [n.alias for n in dp_plan.walk() if isinstance(n, ScanNode)][::-1]
        )
        geqo_cost = geqo._fitness(
            [n.alias for n in geqo_plan.walk() if isinstance(n, ScanNode)][::-1]
        )
        assert geqo_cost <= dp_cost * 5

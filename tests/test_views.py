"""Tests for the SQL view rewriting (stand-alone mode)."""

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.core.views import (
    _sanitize_variables,
    decomposition_to_sql_views,
    execute_view_plan,
)
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.query.parser import parse_sql


class TestSanitize:
    def test_dots_become_underscores(self):
        mapping = _sanitize_variables(["customer.c_custkey"])
        assert mapping["customer.c_custkey"] == "customer_c_custkey"

    def test_collisions_get_suffixes(self):
        mapping = _sanitize_variables(["a.b_c", "a_b.c"])
        assert len(set(mapping.values())) == 2

    def test_leading_digit_prefixed(self):
        mapping = _sanitize_variables(["1abc"])
        assert mapping["1abc"][0].isalpha()


class TestViewPlan:
    @pytest.fixture()
    def plan(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        return optimizer.optimize(chain_sql)

    def test_one_view_per_node(self, plan):
        view_plan = plan.to_sql_views()
        assert len(view_plan.views) == len(plan.decomposition)

    def test_views_in_dependency_order(self, plan):
        view_plan = plan.to_sql_views()
        defined = set()
        for name, sql in view_plan.views:
            parsed = parse_sql(sql)
            for table in parsed.tables:
                if table.relation.startswith("hdv"):
                    assert table.relation in defined
            defined.add(name)

    def test_every_view_parses_in_our_subset(self, plan):
        view_plan = plan.to_sql_views()
        for _name, sql in view_plan.views:
            parsed = parse_sql(sql)
            assert parsed.distinct  # views are SELECT DISTINCT

    def test_final_select_targets_root_view(self, plan):
        view_plan = plan.to_sql_views()
        final = parse_sql(view_plan.final_sql)
        assert final.tables[0].relation == view_plan.root_view

    def test_create_and_drop_statements(self, plan):
        view_plan = plan.to_sql_views()
        creates = view_plan.create_statements()
        drops = view_plan.drop_statements()
        assert len(creates) == len(drops) == len(view_plan.views)
        assert creates[0].startswith("CREATE VIEW ")
        assert drops[0].startswith("DROP VIEW ")

    def test_render_is_complete_script(self, plan):
        text = plan.to_sql_views().render()
        assert text.count("CREATE VIEW") == len(plan.decomposition)
        assert text.strip().endswith(";")

    def test_custom_prefix(self, plan):
        view_plan = plan.to_sql_views(view_prefix="zzz")
        assert all(name.startswith("zzz_") for name, _ in view_plan.views)


class TestExecution:
    def test_views_match_direct_execution(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        plan = optimizer.optimize(chain_sql)
        view_plan = plan.to_sql_views()

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        direct = dbms.run_sql(chain_sql)
        via_views = execute_view_plan(view_plan, dbms)
        assert direct.relation.same_content(via_views.relation)

    def test_temporaries_dropped_after_execution(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        view_plan = optimizer.optimize(chain_sql).to_sql_views()
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        before = set(chain_db.table_names)
        execute_view_plan(view_plan, dbms)
        assert set(chain_db.table_names) == before

    def test_temporaries_dropped_on_failure(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        view_plan = optimizer.optimize(chain_sql).to_sql_views()
        # Sabotage the final statement so execution fails midway.
        view_plan.final_sql = "SELECT nope FROM nowhere"
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        before = set(chain_db.table_names)
        with pytest.raises(Exception):
            execute_view_plan(view_plan, dbms)
        assert set(chain_db.table_names) == before

    def test_order_by_rewritten_into_final_select(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        plan = HybridOptimizer(tiny_tpch, max_width=3).optimize(query_q5())
        final = parse_sql(plan.to_sql_views().final_sql)
        # ORDER BY revenue DESC survives as an alias reference.
        assert final.order_by
        assert final.order_by[0].descending

    def test_group_by_rewritten_to_view_columns(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        plan = HybridOptimizer(tiny_tpch, max_width=3).optimize(query_q5())
        view_plan = plan.to_sql_views()
        final = parse_sql(view_plan.final_sql)
        assert final.group_by
        # Group-by column is a sanitized variable column of the root view.
        assert final.group_by[0].column in view_plan.variable_columns.values()

    def test_aggregate_final_select(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        optimizer = HybridOptimizer(tiny_tpch, max_width=3)
        plan = optimizer.optimize(query_q5())
        view_plan = plan.to_sql_views()
        dbms = SimulatedDBMS(tiny_tpch, COMMDB_PROFILE)
        via_views = execute_view_plan(view_plan, dbms)
        direct = dbms.run_sql(query_q5())
        assert direct.relation.same_content(via_views.relation)

"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query.lexer import Token, TokenKind, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("c_custkey lineitem x1")
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_numbers(self):
        assert values("42 3.14 1e6 2.5E-3") == ["42", "3.14", "1e6", "2.5E-3"]
        assert kinds("42 3.14") == [TokenKind.NUMBER, TokenKind.NUMBER]

    def test_strings_with_escapes(self):
        tokens = tokenize("'hello' 'it''s'")
        assert tokens[0].value == "hello"
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("SELECT 'oops")
        assert err.value.position == 7

    def test_operators(self):
        assert values("<= >= <> != = < >") == ["<=", ">=", "<>", "<>", "=", "<", ">"]

    def test_arithmetic_as_operators(self):
        tokens = tokenize("a + b * c")
        assert tokens[1].kind is TokenKind.OPERATOR
        assert tokens[3].kind is TokenKind.OPERATOR

    def test_punctuation(self):
        assert values("( ) , . ;") == ["(", ")", ",", ".", ";"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind is TokenKind.EOF

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("SELECT @x")
        assert err.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_matches_helper(self):
        token = Token(TokenKind.KEYWORD, "SELECT", 0)
        assert token.matches(TokenKind.KEYWORD, "select")
        assert not token.matches(TokenKind.IDENT, "select")
        assert token.matches(TokenKind.KEYWORD)

    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

"""The interprocedural analyzer: each analysis on seeded bad/good fixture
packages, suppression and baseline behavior, the JSON reporter schema, the
parse-exactly-once invariant, the dynamic-witness ⊆ static-graph soundness
check — and the self-clean gate (zero unbaselined findings on
``src/repro``)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.driver import SourceCache, run_analysis
from repro.analysis.interproc import (
    BaselineEntry,
    build_program,
    interproc_rule_ids,
    find_baseline,
    run_interproc,
)
from repro.analysis.interproc.lockorder import build_lock_graph
from repro.cli import main as cli_main

REPRO_SRC = str(Path(repro.__file__).parent)


def write_fixture(tmp_path: Path, files: dict) -> Path:
    for relpath, code in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return tmp_path


def interproc_report(tmp_path: Path, files: dict, **kwargs):
    return run_interproc([str(write_fixture(tmp_path, files))], **kwargs)


def keys(report):
    return [finding.key for finding in report.findings]


# ---------------------------------------------------------------------------
# Lock-order cycles
# ---------------------------------------------------------------------------


CYCLIC_LOCKS = {
    "locks.py": """
    from repro.analysis.lockwitness import make_lock


    class Pair:
        def __init__(self):
            self._a = make_lock("Fixture.A")
            self._b = make_lock("Fixture.B")

        def forward(self):
            with self._a:
                self._grab_b()

        def _grab_b(self):
            with self._b:
                pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
    """
}

ORDERED_LOCKS = {
    "locks.py": """
    from repro.analysis.lockwitness import make_lock


    class Pair:
        def __init__(self):
            self._a = make_lock("Fixture.A")
            self._b = make_lock("Fixture.B")

        def forward(self):
            with self._a:
                self._grab_b()

        def _grab_b(self):
            with self._b:
                pass

        def also_forward(self):
            with self._a:
                with self._b:
                    pass
    """
}


class TestLockOrderAnalysis:
    def test_opposite_acquisition_orders_are_a_cycle(self, tmp_path):
        report = interproc_report(tmp_path, CYCLIC_LOCKS)
        assert keys(report) == ["lock-cycle:Fixture.A->Fixture.B"]
        (finding,) = report.findings
        assert finding.rule_id == "interproc-lock-order"
        # Both offending paths are named, including the transitive one.
        assert "Fixture.A -> Fixture.B" in finding.message
        assert "Fixture.B -> Fixture.A" in finding.message
        assert "via" in finding.message  # the call-mediated acquisition

    def test_consistent_order_is_clean(self, tmp_path):
        report = interproc_report(tmp_path, ORDERED_LOCKS)
        assert report.findings == []

    def test_lock_graph_artifact_records_edges(self, tmp_path):
        report = interproc_report(tmp_path, CYCLIC_LOCKS)
        graph = report.graphs["lock-graph"]
        edges = {(e["source"], e["target"]) for e in graph["edges"]}
        assert ("Fixture.A", "Fixture.B") in edges
        assert ("Fixture.B", "Fixture.A") in edges
        assert "Fixture.A" in graph["locks"]


# ---------------------------------------------------------------------------
# Shared-state races
# ---------------------------------------------------------------------------


RACY_SHARED = {
    "shared.py": """
    import threading

    from repro.analysis.lockwitness import make_lock


    class Counter:
        def __init__(self):
            self._lock = make_lock("Fixture.Counter")
            self.total = 0
            self._thread = threading.Thread(target=self._run)

        def _run(self):
            with self._lock:
                self.total += 1

        def peek(self):
            return self.total
    """
}

GUARDED_SHARED = {
    "shared.py": """
    import threading

    from repro.analysis.lockwitness import make_lock


    class Counter:
        def __init__(self):
            self._lock = make_lock("Fixture.Counter")
            self.total = 0
            self._thread = threading.Thread(target=self._run)

        def _run(self):
            with self._lock:
                self.total += 1

        def peek(self):
            with self._lock:
                return self.total
    """
}

UNGUARDED_LOCKED_CALL = {
    "shared.py": """
    import threading

    from repro.analysis.lockwitness import make_lock


    class Counter:
        def __init__(self):
            self._lock = make_lock("Fixture.Counter")
            self.total = 0
            self._thread = threading.Thread(target=self._run)

        def _run(self):
            with self._lock:
                self._bump_locked()

        def _bump_locked(self):
            self.total += 1

        def reset(self):
            self._bump_locked()
    """
}


class TestSharedStateRaceAnalysis:
    def test_unguarded_read_in_shared_class_is_flagged(self, tmp_path):
        report = interproc_report(tmp_path, RACY_SHARED)
        assert keys(report) == ["race:Counter.total:peek"]
        (finding,) = report.findings
        assert finding.rule_id == "interproc-race"
        assert "Fixture.Counter" in finding.message

    def test_guarded_access_is_clean(self, tmp_path):
        report = interproc_report(tmp_path, GUARDED_SHARED)
        assert report.findings == []

    def test_locked_helper_called_without_lock(self, tmp_path):
        report = interproc_report(tmp_path, UNGUARDED_LOCKED_CALL)
        assert keys(report) == ["locked-call:Counter._bump_locked:reset"]

    def test_unshared_class_is_not_flagged(self, tmp_path):
        # Same racy shape, but no thread root anywhere: single-threaded
        # code may read its own attributes freely.
        files = {
            "shared.py": RACY_SHARED["shared.py"].replace(
                "self._thread = threading.Thread(target=self._run)",
                "self._thread = None",
            )
        }
        report = interproc_report(tmp_path, files)
        assert report.findings == []


# ---------------------------------------------------------------------------
# Codec completeness
# ---------------------------------------------------------------------------


BROKEN_CODEC = {
    "errors.py": """
    class ReproError(Exception):
        def __init__(self, message):
            super().__init__(message)
            self.message = message


    class SiteError(ReproError):
        def __init__(self, message, site=None):
            super().__init__(message)
            self.site = site


    class ForgottenError(ReproError):
        pass


    class DriftError(ReproError):
        def __init__(self, message, position=0):
            super().__init__(message)
            self.position = position


    class LossyError(ReproError):
        def __init__(self, message, extra=0):
            super().__init__(message)
            self.extra = extra
    """,
    "messages.py": """
    _ERROR_FIELDS = {
        "SiteError": ("args0", "site"),
        "DriftError": ("args0", "pos"),
        "GhostError": ("args0",),
    }

    _MESSAGE_ONLY = frozenset({"ReproError", "LossyError"})
    """,
}

COMPLETE_CODEC = {
    "errors.py": BROKEN_CODEC["errors.py"],
    "messages.py": """
    _ERROR_FIELDS = {
        "SiteError": ("args0", "site"),
        "DriftError": ("args0", "position"),
        "LossyError": ("args0", "extra"),
    }

    _MESSAGE_ONLY = frozenset({"ReproError", "ForgottenError"})
    """,
}


class TestCodecCompletenessAnalysis:
    def test_broken_codec_defects_are_found(self, tmp_path):
        report = interproc_report(tmp_path, BROKEN_CODEC)
        assert sorted(keys(report)) == [
            "codec-lossy:LossyError",
            "codec-signature:DriftError",
            "codec-stale:GhostError",
            "codec-unregistered:ForgottenError",
        ]
        by_key = {f.key: f for f in report.findings}
        assert "ShardError" in by_key["codec-unregistered:ForgottenError"].message
        assert "'position'" in by_key["codec-signature:DriftError"].message
        assert by_key["codec-stale:GhostError"].severity == "warning"
        assert "extra" in by_key["codec-lossy:LossyError"].message

    def test_complete_codec_is_clean(self, tmp_path):
        report = interproc_report(tmp_path, COMPLETE_CODEC)
        assert report.findings == []

    def test_no_tables_means_no_findings(self, tmp_path):
        report = interproc_report(
            tmp_path, {"errors.py": BROKEN_CODEC["errors.py"]}
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Determinism (set-order into sinks)
# ---------------------------------------------------------------------------


SET_ORDERED_ROUTING = {
    "router.py": """
    def routes(shards):
        targets = set(shards)
        return list(targets)
    """
}

SORTED_ROUTING = {
    "router.py": """
    def routes(shards):
        targets = set(shards)
        return sorted(targets)


    def spread(shards):
        targets = set(shards)
        return min(targets), len(targets), max(targets)


    def contains(shards, shard):
        return shard in set(shards)
    """
}


class TestDeterminismAnalysis:
    def test_set_order_escaping_into_routing_is_flagged(self, tmp_path):
        report = interproc_report(tmp_path, SET_ORDERED_ROUTING)
        assert keys(report) == ["set-order:router.routes#1"]
        (finding,) = report.findings
        assert finding.rule_id == "interproc-determinism"

    def test_order_insensitive_uses_are_clean(self, tmp_path):
        report = interproc_report(tmp_path, SORTED_ROUTING)
        assert report.findings == []

    def test_non_sink_module_is_out_of_scope(self, tmp_path):
        files = {"helpers.py": SET_ORDERED_ROUTING["router.py"]}
        report = interproc_report(tmp_path, files)
        assert report.findings == []


# ---------------------------------------------------------------------------
# Suppressions, baseline, selection
# ---------------------------------------------------------------------------


class TestSuppressionAndBaseline:
    def test_inline_suppression_applies(self, tmp_path):
        files = {
            "shared.py": RACY_SHARED["shared.py"].replace(
                "return self.total",
                "return self.total  # hdqo: ignore[interproc-race]",
            )
        }
        report = interproc_report(tmp_path, files)
        assert report.findings == []
        assert report.suppressed == 1

    def test_baseline_accepts_by_identity(self, tmp_path):
        report = interproc_report(
            tmp_path,
            RACY_SHARED,
            baseline_entries=[
                BaselineEntry(
                    rule="interproc-race",
                    key="race:Counter.total:peek",
                    justification="test",
                )
            ],
        )
        assert report.findings == []
        assert [f.key for f in report.baselined] == [
            "race:Counter.total:peek"
        ]

    def test_stale_baseline_entry_is_reported(self, tmp_path):
        report = interproc_report(
            tmp_path,
            GUARDED_SHARED,
            baseline_entries=[
                BaselineEntry(
                    rule="interproc-race", key="race:Gone.attr:method"
                )
            ],
        )
        assert keys(report) == [
            "baseline-stale:interproc-race:race:Gone.attr:method"
        ]
        (finding,) = report.findings
        assert finding.rule_id == "interproc-baseline"
        assert finding.severity == "warning"

    def test_baseline_file_is_discovered_upwards(self, tmp_path):
        write_fixture(tmp_path, RACY_SHARED)
        baseline = tmp_path / "lint-baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "interproc-race",
                            "key": "race:Counter.total:peek",
                            "justification": "test",
                        }
                    ]
                }
            )
        )
        found = find_baseline([str(tmp_path / "shared.py")])
        assert found == str(baseline)
        report = run_interproc([str(tmp_path)], baseline_path=found)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_unknown_select_raises(self, tmp_path):
        write_fixture(tmp_path, GUARDED_SHARED)
        with pytest.raises(ValueError, match="unknown interproc rule id"):
            run_interproc([str(tmp_path)], select=["no-such-rule"])

    def test_select_restricts_analyses(self, tmp_path):
        # Only the codec analysis runs: the race finding disappears.
        files = dict(RACY_SHARED)
        report = interproc_report(
            tmp_path, files, select=["interproc-codec"]
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# CLI integration: flags, JSON schema, graph artifacts
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_interproc_failure_sets_exit_code(self, tmp_path, capsys):
        write_fixture(tmp_path, RACY_SHARED)
        assert cli_main(["lint", "--interproc", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "race:Counter.total:peek" not in out  # keys are JSON-only
        assert "Counter.total" in out

    def test_json_schema_includes_keys_and_baselined(self, tmp_path, capsys):
        write_fixture(tmp_path, RACY_SHARED)
        code = cli_main(
            ["lint", "--interproc", "--format", "json", str(tmp_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert set(payload) == {
            "files", "errors", "warnings", "suppressed", "baselined",
            "ok", "findings",
        }
        assert payload["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["key"] == "race:Counter.total:peek"
        assert finding["rule"] == "interproc-race"

    def test_graphs_out_writes_artifacts(self, tmp_path, capsys):
        write_fixture(tmp_path, ORDERED_LOCKS)
        out_dir = tmp_path / "artifacts"
        code = cli_main(
            [
                "lint", "--interproc", "--graphs-out", str(out_dir),
                str(tmp_path / "locks.py"),
            ]
        )
        assert code == 0
        call_graph = json.loads((out_dir / "call-graph.json").read_text())
        lock_graph = json.loads((out_dir / "lock-graph.json").read_text())
        assert call_graph["functions"] > 0
        edges = {(e["source"], e["target"]) for e in lock_graph["edges"]}
        assert ("Fixture.A", "Fixture.B") in edges

    def test_list_rules_includes_interproc_group(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in interproc_rule_ids():
            assert rule_id in out
        assert "[interproc]" in out

    def test_without_flag_interproc_rules_do_not_run(self, tmp_path, capsys):
        write_fixture(tmp_path, RACY_SHARED)
        assert cli_main(["lint", str(tmp_path)]) == 0


# ---------------------------------------------------------------------------
# Parse-exactly-once across rule groups
# ---------------------------------------------------------------------------


class TestSourceCacheSharing:
    def test_each_file_parses_once_across_both_groups(self, tmp_path):
        write_fixture(tmp_path, RACY_SHARED)
        write_fixture(tmp_path, CYCLIC_LOCKS)
        cache = SourceCache()
        run_analysis([str(tmp_path)], cache=cache)
        run_interproc([str(tmp_path)], cache=cache)
        assert cache.parse_counts  # both files loaded through the cache
        assert set(cache.parse_counts.values()) == {1}


# ---------------------------------------------------------------------------
# Whole-repo gates (the expensive model build happens once, shared)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def repro_report():
    return run_interproc(
        [REPRO_SRC], baseline_path=find_baseline([REPRO_SRC])
    )


class TestSelfCleanGate:
    def test_src_repro_is_clean_modulo_baseline(self, repro_report):
        assert repro_report.findings == []

    def test_baseline_entries_are_justified(self):
        path = find_baseline([REPRO_SRC])
        assert path is not None
        payload = json.loads(Path(path).read_text())
        for entry in payload["entries"]:
            assert entry["justification"].strip(), entry["key"]

    def test_thread_roots_cover_the_serving_stack(self, repro_report):
        roots = repro_report.model.thread_roots
        names = {root.rsplit(".", 2)[-2] + "." + root.rsplit(".", 1)[-1]
                 for root in roots if "." in root}
        assert "ExecutorPool._worker" in names
        assert "ShardRouter._collect" in names
        assert "ShardSupervisor._run" in names


class TestWitnessSubgraph:
    def test_dynamic_edges_are_statically_predicted(
        self, monkeypatch, chain_db, chain_sql
    ):
        """Every lock-order edge the runtime witnesses must already be in
        the static may-acquire-after graph (soundness on exercised paths).
        """
        monkeypatch.setenv("HDQO_LOCKCHECK", "1")
        from repro.analysis.lockwitness import GLOBAL_WITNESS
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
        from repro.service.server import QueryService

        before = {
            (held, acquired)
            for held, succs in GLOBAL_WITNESS.edges().items()
            for acquired in succs
        }
        service = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=2
        )
        try:
            for _ in range(2):
                service.execute(chain_sql)
            service.snapshot()
        finally:
            service.close()
        witnessed = {
            (held, acquired)
            for held, succs in GLOBAL_WITNESS.edges().items()
            for acquired in succs
        } - before
        assert witnessed, "workload exercised no nested lock acquisitions"

        model = build_program([REPRO_SRC], SourceCache())
        static_pairs = build_lock_graph(model).pairs()
        missing = sorted(pair for pair in witnessed if pair not in static_pairs)
        assert not missing, (
            "dynamically witnessed lock-order edges missing from the "
            f"static graph: {missing}"
        )

"""Tests for the physical join operators (hash / merge / nested loops)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.dbms import COMMDB_PROFILE, EngineProfile, SimulatedDBMS
from repro.engine.plan import JoinNode, ScanNode
from repro.metering import WorkMeter
from repro.relational import Relation

values = st.integers(min_value=0, max_value=4)


@st.composite
def relation_pair(draw):
    n1 = draw(st.integers(min_value=0, max_value=10))
    n2 = draw(st.integers(min_value=0, max_value=10))
    r = Relation(["a", "j"], [(draw(values), draw(values)) for _ in range(n1)], name="r")
    s = Relation(["j", "b"], [(draw(values), draw(values)) for _ in range(n2)], name="s")
    return r, s


class TestOperatorEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(pair=relation_pair())
    def test_merge_equals_hash(self, pair):
        r, s = pair
        assert r.merge_join(s).same_content(r.natural_join(s))

    @settings(max_examples=60, deadline=None)
    @given(pair=relation_pair())
    def test_nlj_equals_hash(self, pair):
        r, s = pair
        assert r.nested_loop_join(s).same_content(r.natural_join(s))

    def test_merge_without_shared_falls_back_to_cross(self):
        r = Relation(["a"], [(1,), (2,)])
        s = Relation(["b"], [(3,)])
        assert len(r.merge_join(s)) == 2

    def test_nlj_cross_product(self):
        r = Relation(["a"], [(1,), (2,)])
        s = Relation(["b"], [(3,), (4,)])
        assert len(r.nested_loop_join(s)) == 4

    def test_merge_duplicate_runs(self):
        r = Relation(["j", "x"], [(1, "a"), (1, "b")])
        s = Relation(["j", "y"], [(1, "p"), (1, "q")])
        joined = r.merge_join(s)
        assert len(joined) == 4

    def test_merge_duplicate_runs_both_sides_multiple_keys(self):
        """Equal-key runs on both inputs multiply without leaking across keys."""
        r = Relation(
            ["j", "x"],
            [(1, "a"), (2, "c"), (1, "b"), (2, "d"), (2, "e"), (3, "f")],
            name="r",
        )
        s = Relation(
            ["j", "y"],
            [(2, "q"), (1, "p"), (1, "q"), (2, "r"), (4, "z")],
            name="s",
        )
        joined = r.merge_join(s)
        # key 1: 2×2, key 2: 3×2, keys 3/4 unmatched.
        assert len(joined) == 10
        assert joined.same_content(r.natural_join(s))

    def test_semijoin_no_shared_attributes(self):
        """⋉ with disjoint schemas: all-or-nothing on the right's emptiness."""
        left = Relation(["a", "b"], [(1, 2), (3, 4)], name="l")
        assert left.semijoin(Relation(["z"], [(9,)])).tuples == left.tuples
        assert left.semijoin(Relation(["z"], [])).tuples == []

    def test_work_categories(self):
        r = Relation(["j"], [(1,), (2,)])
        s = Relation(["j"], [(1,), (3,)])
        m1, m2 = WorkMeter(), WorkMeter()
        r.merge_join(s, meter=m1)
        r.nested_loop_join(s, meter=m2)
        assert "merge-sort" in m1.by_category
        assert m2.by_category["nlj-pair"] == 4


class TestPlannerSelection:
    def test_profile_merge_join(self, chain_db, chain_sql):
        profile = EngineProfile(name="mj", join_algorithm="merge", nlj_threshold=0.0)
        dbms = SimulatedDBMS(chain_db, profile)
        result = dbms.run_sql(chain_sql)
        assert "MergeJoin" in result.plan_text
        baseline = SimulatedDBMS(chain_db, COMMDB_PROFILE).run_sql(chain_sql)
        assert result.relation.same_content(baseline.relation)

    def test_nlj_for_tiny_inputs(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        # region is estimated at ~1 row after its filter → NLJ fires.
        dbms = SimulatedDBMS(tiny_tpch, COMMDB_PROFILE)
        result = dbms.run_sql(query_q5())
        assert "NestedLoopJoin" in result.plan_text
        assert result.finished

    def test_nlj_threshold_zero_disables(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        profile = EngineProfile(name="hashonly", nlj_threshold=0.0)
        dbms = SimulatedDBMS(tiny_tpch, profile)
        result = dbms.run_sql(query_q5())
        assert "NestedLoopJoin" not in result.plan_text

    def test_all_algorithms_agree_on_q5(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5

        answers = []
        for algorithm in ("hash", "merge"):
            profile = EngineProfile(name=algorithm, join_algorithm=algorithm)
            result = SimulatedDBMS(tiny_tpch, profile).run_sql(query_q5())
            answers.append(result.relation)
        assert answers[0].same_content(answers[1])

    def test_plan_node_labels(self):
        join = JoinNode(ScanNode("a", "a"), ScanNode("b", "b"), ("x",), algorithm="merge")
        assert "MergeJoin" in str(join)
        join = JoinNode(ScanNode("a", "a"), ScanNode("b", "b"), ("x",), algorithm="nlj")
        assert "NestedLoopJoin" in str(join)

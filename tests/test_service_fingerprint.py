"""Tests for canonical query-template fingerprints (the plan-cache key)."""

import pytest

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.service.fingerprint import (
    fingerprint_translation,
    rename_hypertree,
    schema_digest,
)


def fp(db, sql, context=""):
    translation = SimulatedDBMS(db, COMMDB_PROFILE).translate(sql)
    return fingerprint_translation(translation, context=context)


class TestTemplateCollisions:
    """Queries that must share a fingerprint (one plan serves them all)."""

    def test_identical_text(self, chain_db, chain_sql):
        assert fp(chain_db, chain_sql).key == fp(chain_db, chain_sql).key

    def test_alias_renaming(self, chain_db, chain_sql):
        renamed = """
        SELECT w.a0, y.a2 FROM r0 w, r1 x, r2 y, r3 z
        WHERE w.b0 = x.a1 AND x.b1 = y.a2 AND y.b2 = z.a3 AND z.b3 = w.a0
        """
        a, b = fp(chain_db, chain_sql), fp(chain_db, renamed)
        assert a.key == b.key
        assert a.text == b.text

    def test_atom_order_permutation(self, chain_db, chain_sql):
        permuted = """
        SELECT r0.a0, r2.a2 FROM r3, r2, r1, r0
        WHERE r1.b1 = r2.a2 AND r3.b3 = r0.a0 AND r0.b0 = r1.a1 AND r2.b2 = r3.a3
        """
        assert fp(chain_db, chain_sql).key == fp(chain_db, permuted).key

    def test_different_constants_same_shape(self, chain_db):
        base = "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {}"
        assert fp(chain_db, base.format(3)).key == fp(chain_db, base.format(7)).key


class TestTemplateSeparation:
    """Structurally distinct queries must not share a fingerprint."""

    def test_different_join_structure(self, chain_db, chain_sql):
        acyclic = """
        SELECT r0.a0, r2.a2 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3
        """
        assert fp(chain_db, chain_sql).key != fp(chain_db, acyclic).key

    def test_different_output_variables(self, chain_db, chain_sql):
        other = """
        SELECT r1.a1, r2.a2 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        assert fp(chain_db, chain_sql).key != fp(chain_db, other).key

    def test_different_filter_operator(self, chain_db):
        eq = "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < 3"
        lt = "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 > 3"
        assert fp(chain_db, eq).key != fp(chain_db, lt).key

    def test_different_relation(self, chain_db):
        a = "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1"
        b = "SELECT r0.a0 FROM r0, r2 WHERE r0.b0 = r2.a2"
        assert fp(chain_db, a).key != fp(chain_db, b).key

    def test_context_separates(self, chain_db, chain_sql):
        assert (
            fp(chain_db, chain_sql, context="k=2").key
            != fp(chain_db, chain_sql, context="k=4").key
        )


class TestMaps:
    def test_var_map_round_trip(self, chain_db, chain_sql):
        fingerprint = fp(chain_db, chain_sql)
        inverse = fingerprint.inverse_var_map()
        for original, canonical in fingerprint.var_map.items():
            assert inverse[canonical] == original
        assert len(fingerprint.inverse_atom_map()) == len(fingerprint.atom_map)

    def test_canonical_names_shared_across_renamings(self, chain_db, chain_sql):
        renamed = """
        SELECT w.a0, y.a2 FROM r0 w, r1 x, r2 y, r3 z
        WHERE w.b0 = x.a1 AND x.b1 = y.a2 AND y.b2 = z.a3 AND z.b3 = w.a0
        """
        a, b = fp(chain_db, chain_sql), fp(chain_db, renamed)
        assert set(a.var_map.values()) == set(b.var_map.values())
        assert set(a.atom_map.values()) == set(b.atom_map.values())


class TestRenameHypertree:
    def test_round_trip_preserves_structure(self, chain_db, chain_sql):
        from repro.core.optimizer import HybridOptimizer

        plan = HybridOptimizer(chain_db, max_width=2).optimize(chain_sql)
        fingerprint = fp(chain_db, chain_sql)
        tree = plan.decomposition

        canonical = rename_hypertree(
            tree, fingerprint.var_map, fingerprint.atom_map
        )
        back = rename_hypertree(
            canonical,
            fingerprint.inverse_var_map(),
            fingerprint.inverse_atom_map(),
            hypergraph=plan.translation.query.hypergraph(),
        )
        out = plan.translation.query.output_variables
        assert back.is_q_hypertree_decomposition(out)
        assert back.width == tree.width
        assert back.root.chi == tree.root.chi

    def test_rename_does_not_mutate_source(self, chain_db, chain_sql):
        from repro.core.optimizer import HybridOptimizer

        plan = HybridOptimizer(chain_db, max_width=2).optimize(chain_sql)
        fingerprint = fp(chain_db, chain_sql)
        before = plan.decomposition.render()
        rename_hypertree(
            plan.decomposition, fingerprint.var_map, fingerprint.atom_map
        )
        assert plan.decomposition.render() == before


class TestSchemaDigest:
    def test_stable(self, chain_db):
        assert schema_digest(chain_db) == schema_digest(chain_db)

    def test_changes_with_schema(self, chain_db):
        from repro.relational import AttributeType, RelationSchema

        before = schema_digest(chain_db)
        chain_db.create_table(
            RelationSchema.of("extra", {"z": AttributeType.INT}), [(1,)]
        )
        assert schema_digest(chain_db) != before

"""Tests for HybridOptimizer and the tight PostgreSQL-style coupling."""

import pytest

from repro.errors import DecompositionNotFound
from repro.core.integration import install_structural_optimizer
from repro.core.optimizer import HybridOptimizer, cost_model_from_database
from repro.engine.dbms import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS


class TestHybridOptimizer:
    def test_optimize_produces_qhd(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        plan = optimizer.optimize(chain_sql)
        out = plan.translation.query.output_variables
        assert plan.decomposition.is_q_hypertree_decomposition(out)
        assert out <= plan.decomposition.root.chi
        assert plan.width <= 2 + 1  # atom assignment may widen λ labels

    def test_execute_matches_engine(self, chain_db, chain_sql):
        optimizer = HybridOptimizer(chain_db, max_width=2)
        result = optimizer.optimize(chain_sql).execute()
        baseline = SimulatedDBMS(chain_db, COMMDB_PROFILE).run_sql(chain_sql)
        assert result.relation.same_content(baseline.relation)

    def test_decomposition_seconds_recorded(self, chain_db, chain_sql):
        plan = HybridOptimizer(chain_db, max_width=2).optimize(chain_sql)
        assert plan.decomposition_seconds >= 0.0

    def test_failure_when_width_too_small(self, chain_db):
        # Output variables from all four atoms cannot be covered at width 1.
        sql = """
        SELECT r0.a0, r1.a1, r2.a2, r3.a3 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        with pytest.raises(DecompositionNotFound):
            HybridOptimizer(chain_db, max_width=1).optimize(sql)

    def test_structural_mode_without_statistics(self, chain_db, chain_sql):
        chain_db.statistics.clear()
        optimizer = HybridOptimizer(chain_db, max_width=2)
        plan = optimizer.optimize(chain_sql)
        assert not plan.used_statistics
        assert plan.execute().finished

    def test_work_budget_dnf(self, chain_db, chain_sql):
        plan = HybridOptimizer(chain_db, max_width=2).optimize(chain_sql)
        result = plan.execute(work_budget=5)
        assert not result.finished
        assert result.relation is None

    def test_explain_text(self, chain_db, chain_sql):
        plan = HybridOptimizer(chain_db, max_width=2).optimize(chain_sql)
        assert "λ=" in plan.explain()

    def test_tpch_q5_and_q8(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q5, query_q8

        optimizer = HybridOptimizer(tiny_tpch, max_width=3)
        dbms = SimulatedDBMS(tiny_tpch, COMMDB_PROFILE)
        for sql in (query_q5(), query_q8()):
            plan = optimizer.optimize(sql)
            result = plan.execute()
            baseline = dbms.run_sql(sql)
            assert result.relation.same_content(baseline.relation)


class TestCostModelFromDatabase:
    def test_uses_statistics(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        tr = dbms.translate(chain_sql)
        model = cost_model_from_database(tr, chain_db, use_statistics=True)
        assert model.estimate_for("r0").cardinality == 40

    def test_uniform_without_statistics(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        tr = dbms.translate(chain_sql)
        model = cost_model_from_database(tr, chain_db, use_statistics=False)
        assert model.estimate_for("r0").cardinality == 1000.0

    def test_falls_back_when_stats_missing(self, chain_db, chain_sql):
        chain_db.statistics.clear()
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        tr = dbms.translate(chain_sql)
        model = cost_model_from_database(tr, chain_db, use_statistics=True)
        assert model.estimate_for("r0").cardinality == 1000.0


class TestTightCoupling:
    def test_coupled_engine_uses_decomposition(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(dbms, max_width=2)
        result = dbms.run_sql(chain_sql)
        assert result.optimizer == "q-hd"
        assert "λ=" in result.plan_text

    def test_answers_match_stock_engine(self, chain_db, chain_sql):
        stock = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        baseline = stock.run_sql(chain_sql)
        coupled = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(coupled, max_width=2)
        result = coupled.run_sql(chain_sql)
        assert result.relation.same_content(baseline.relation)

    def test_fallback_to_builtin(self, chain_db):
        # Width 1 cannot cover a 4-variable output: fallback fires.
        sql = """
        SELECT r0.a0, r1.a1, r2.a2, r3.a3 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        dbms = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(dbms, max_width=1, fallback_to_builtin=True)
        result = dbms.run_sql(sql)
        assert result.finished
        assert "builtin fallback" in result.plan_text

    def test_no_fallback_raises(self, chain_db):
        sql = """
        SELECT r0.a0, r1.a1, r2.a2, r3.a3 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        dbms = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(dbms, max_width=1, fallback_to_builtin=False)
        with pytest.raises(DecompositionNotFound):
            dbms.run_sql(sql)

    def test_uninstall_restores_builtin(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(dbms, max_width=2)
        dbms.set_optimizer_handler(None)
        result = dbms.run_sql(chain_sql)
        assert result.optimizer == "dp-leftdeep"

    def test_fallback_answer_matches_direct_run(self, chain_db):
        # The degraded path must produce exactly what the stock engine does.
        sql = """
        SELECT r0.a0, r1.a1, r2.a2, r3.a3 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        stock = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        baseline = stock.run_sql(sql)
        coupled = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        install_structural_optimizer(coupled, max_width=1, fallback_to_builtin=True)
        result = coupled.run_sql(sql)
        assert result.optimizer == "builtin-fallback"
        assert result.relation.same_content(baseline.relation)
        assert sorted(result.relation.tuples) == sorted(baseline.relation.tuples)


class TestCostModelCaching:
    def test_model_built_once_for_identical_runs(
        self, chain_db, chain_sql, monkeypatch
    ):
        import repro.core.integration as integration

        calls = {"n": 0}
        real = integration.cost_model_from_database

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            integration, "cost_model_from_database", counting
        )
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        install_structural_optimizer(dbms, max_width=2)
        first = dbms.run_sql(chain_sql)
        second = dbms.run_sql(chain_sql)
        assert first.relation.same_content(second.relation)
        assert calls["n"] == 1

    def test_model_rebuilt_after_analyze(
        self, chain_db, chain_sql, monkeypatch
    ):
        import repro.core.integration as integration

        calls = {"n": 0}
        real = integration.cost_model_from_database

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(
            integration, "cost_model_from_database", counting
        )
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        install_structural_optimizer(dbms, max_width=2)
        dbms.run_sql(chain_sql)
        chain_db.analyze()  # bumps the statistics version
        dbms.run_sql(chain_sql)
        assert calls["n"] == 2

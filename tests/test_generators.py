"""Tests for the hypergraph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import (
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    is_acyclic,
    line_hypergraph,
    random_hypergraph,
)


class TestLine:
    def test_structure(self):
        hg = line_hypergraph(4, shared=1, private=1)
        assert len(hg) == 4
        # Adjacent atoms share exactly the designated variables.
        for i in range(3):
            shared = hg.edge(f"p{i}").vertices & hg.edge(f"p{i + 1}").vertices
            assert len(shared) == 1
        # Non-adjacent atoms are disjoint (the paper's requirement).
        assert not hg.edge("p0").vertices & hg.edge("p2").vertices

    def test_wider_sharing(self):
        hg = line_hypergraph(3, shared=2, private=0)
        assert len(hg.edge("p1").vertices) == 4

    def test_invalid_size(self):
        with pytest.raises(HypergraphError):
            line_hypergraph(0)


class TestCycle:
    def test_endpoints_share(self):
        hg = cycle_hypergraph(5)
        shared = hg.edge("p0").vertices & hg.edge("p4").vertices
        assert len(shared) == 1

    def test_invalid_size(self):
        with pytest.raises(HypergraphError):
            cycle_hypergraph(1)


class TestCliqueAndGrid:
    def test_clique_edge_count(self):
        hg = clique_hypergraph(5)
        assert len(hg) == 10
        assert len(hg.vertices) == 5

    def test_clique_invalid(self):
        with pytest.raises(HypergraphError):
            clique_hypergraph(1)

    def test_grid_structure(self):
        hg = grid_hypergraph(3, 4)
        assert len(hg.vertices) == 12
        # 3*(4-1) horizontal + (3-1)*4 vertical edges
        assert len(hg) == 9 + 8

    def test_grid_1x1(self):
        hg = grid_hypergraph(1, 1)
        assert len(hg) == 0 or len(hg.vertices) <= 1

    def test_grid_invalid(self):
        with pytest.raises(HypergraphError):
            grid_hypergraph(0, 3)

    def test_single_row_grid_acyclic(self):
        assert is_acyclic(grid_hypergraph(1, 6))


class TestRandom:
    def test_deterministic_with_seed(self):
        hg1 = random_hypergraph(10, 8, seed=5)
        hg2 = random_hypergraph(10, 8, seed=5)
        assert hg1 == hg2

    def test_covers_all_vertices(self):
        hg = random_hypergraph(20, 3, max_arity=2, seed=0)
        assert len(hg.vertices) == 20

    def test_invalid_args(self):
        with pytest.raises(HypergraphError):
            random_hypergraph(0, 5)
        with pytest.raises(HypergraphError):
            random_hypergraph(5, 5, max_arity=0)


@settings(max_examples=30, deadline=None)
@given(
    n_vertices=st.integers(min_value=1, max_value=15),
    n_edges=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=999),
)
def test_random_hypergraph_wellformed(n_vertices, n_edges, seed):
    hg = random_hypergraph(n_vertices, n_edges, seed=seed)
    assert len(hg.vertices) == n_vertices
    for edge in hg:
        assert edge.vertices <= hg.vertices
        assert len(edge) >= 1

"""Tests for scalar/predicate compilation."""

import pytest

from repro.errors import ExecutionError
from repro.engine.expressions import compile_predicate, compile_scalar, conjunction
from repro.query import ast


def resolver(mapping):
    return lambda ref: mapping[ref.column]


class TestScalar:
    def test_literal(self):
        fn = compile_scalar(ast.Literal(42), resolver({}))
        assert fn(()) == 42

    def test_column(self):
        fn = compile_scalar(ast.ColumnRef(None, "a"), resolver({"a": 1}))
        assert fn((10, 20)) == 20

    def test_arithmetic(self):
        # a * (1 - b)
        expr = ast.BinaryOp(
            "*",
            ast.ColumnRef(None, "a"),
            ast.BinaryOp("-", ast.Literal(1), ast.ColumnRef(None, "b")),
        )
        fn = compile_scalar(expr, resolver({"a": 0, "b": 1}))
        assert fn((100.0, 0.1)) == pytest.approx(90.0)

    def test_division(self):
        expr = ast.BinaryOp("/", ast.ColumnRef(None, "a"), ast.Literal(4))
        assert compile_scalar(expr, resolver({"a": 0}))((10,)) == 2.5

    def test_aggregate_rejected(self):
        expr = ast.FuncCall("sum", (ast.ColumnRef(None, "a"),))
        with pytest.raises(ExecutionError, match="aggregate"):
            compile_scalar(expr, resolver({"a": 0}))

    def test_unknown_function_rejected(self):
        expr = ast.FuncCall("sqrt", (ast.Literal(4),))
        with pytest.raises(ExecutionError):
            compile_scalar(expr, resolver({}))

    def test_star_rejected(self):
        with pytest.raises(ExecutionError):
            compile_scalar(ast.Star(), resolver({}))


class TestPredicate:
    def test_all_comparisons(self):
        for op, expected in [
            ("=", False), ("<>", True), ("<", True),
            ("<=", True), (">", False), (">=", False),
        ]:
            pred = compile_predicate(
                ast.Comparison(op, ast.ColumnRef(None, "a"), ast.Literal(5)),
                resolver({"a": 0}),
            )
            assert pred((3,)) is expected

    def test_column_to_column(self):
        pred = compile_predicate(
            ast.Comparison("=", ast.ColumnRef(None, "a"), ast.ColumnRef(None, "b")),
            resolver({"a": 0, "b": 1}),
        )
        assert pred((7, 7))
        assert not pred((7, 8))

    def test_type_error_wrapped(self):
        pred = compile_predicate(
            ast.Comparison("<", ast.ColumnRef(None, "a"), ast.Literal(5)),
            resolver({"a": 0}),
        )
        with pytest.raises(ExecutionError, match="type error"):
            pred(("string",))

    def test_conjunction(self):
        p1 = lambda row: row[0] > 1
        p2 = lambda row: row[0] < 5
        combined = conjunction([p1, p2])
        assert combined((3,))
        assert not combined((7,))

    def test_empty_conjunction_is_true(self):
        assert conjunction([])(())

    def test_single_conjunction_is_identity(self):
        p = lambda row: False
        assert conjunction([p]) is p

"""Chaos suite: availability under an 8-worker storm with injected faults.

The contract under chaos is *correct or explicit*: every query either
returns the same rows as a fault-free serial run, reports an explicit DNF
(``finished=False``, the work-budget contract), or raises a typed
:class:`~repro.errors.ReproError` — never a wrong answer, never a hang,
never a poisoned worker.  Faults are injected deterministically
(:class:`~repro.resilience.faults.FaultInjector` with a fixed seed), so a
failure here reproduces.
"""

import os
import threading
from concurrent.futures import CancelledError

import pytest

from repro.engine.dbms import COMMDB_PROFILE, DBMSResult, SimulatedDBMS
from repro.errors import ReproError, ServiceOverloaded
from repro.resilience import FaultInjector
from repro.service.server import QueryService

from tests.conftest import CHAIN_SQL

#: CI re-runs this whole suite with intra-query parallel evaluation
#: (``HDQO_TEST_PARALLEL=4``); the availability contract must hold there too.
PARALLEL_WORKERS = int(os.environ.get("HDQO_TEST_PARALLEL", "0") or 0)

#: Worker-process count for the sharded storm; CI's shards job sets 8.
SHARDS = int(os.environ.get("HDQO_TEST_SHARDS", "3") or 3)


def make_service(dbms: SimulatedDBMS, **kwargs) -> QueryService:
    """A :class:`QueryService` honouring the suite's parallel-workers knob."""
    kwargs.setdefault("parallel_workers", PARALLEL_WORKERS)
    return QueryService(dbms, **kwargs)

#: ~10 % faults across planning, cache, and execution sites.
STORM_FAULTS = (
    "decompose.search:error:0.1,"
    "plancache.get:latency:0.1:2,"
    "exec.scan:budget:0.1,"
    "exec.join:error:0.1"
)

RESULT_TIMEOUT = 60  # seconds; a hang fails the test instead of wedging it


def storm_queries(repetitions: int = 12):
    """Parameterized instances of the chain template (one per repetition)."""
    base = CHAIN_SQL.strip()
    return [f"{base} AND r0.a0 < {3 + (rep % 5)}" for rep in range(repetitions * 4)]


@pytest.fixture()
def baselines(chain_db):
    """Fault-free serial answers, one per distinct query text."""
    dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
    answers = {}
    for sql in storm_queries():
        if sql not in answers:
            result = dbms.run_sql(sql)
            assert result.finished
            answers[sql] = result.relation
    return answers


class TestChaosStorm:
    def test_storm_correct_or_typed_error(self, chain_db, baselines):
        injector = FaultInjector(STORM_FAULTS, seed=42)
        queries = storm_queries()
        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=8,
            queue_capacity=len(queries),
            fault_injector=injector,
        )
        try:
            futures = [svc.submit(sql) for sql in queries]
            outcomes = []
            for future in futures:  # bounded waits: zero hangs allowed
                try:
                    outcomes.append(future.result(timeout=RESULT_TIMEOUT))
                except ReproError as exc:
                    outcomes.append(exc)

            correct = explicit_dnf = typed_errors = 0
            for sql, outcome in zip(queries, outcomes):
                if isinstance(outcome, ReproError):
                    typed_errors += 1  # explicit, typed failure
                elif isinstance(outcome, DBMSResult) and not outcome.finished:
                    explicit_dnf += 1  # explicit work-budget DNF
                else:
                    assert isinstance(outcome, DBMSResult)
                    assert outcome.relation.same_content(baselines[sql])
                    correct += 1
            # The storm really stormed, and availability survived it.
            assert injector.snapshot()["fired"]
            assert typed_errors + explicit_dnf > 0
            assert correct > 0
            assert correct + explicit_dnf + typed_errors == len(queries)

            # The pool is drained and healthy: no stuck or leaked workers.
            pool = svc.snapshot()["pool"]
            assert pool["active"] == 0
            assert pool["completed"] == pool["submitted"]
        finally:
            svc.close()

    def test_storm_is_reproducible(self, chain_db, baselines):
        """The same seed yields the same per-query verdicts twice."""

        def verdicts():
            svc = make_service(
                SimulatedDBMS(chain_db, COMMDB_PROFILE),
                max_width=2,
                workers=1,  # serial: call order (hence firing) is fixed
                fault_injector=FaultInjector(STORM_FAULTS, seed=7),
            )
            try:
                out = []
                for sql in storm_queries(repetitions=4):
                    try:
                        result = svc.execute(sql)
                        out.append(
                            "ok" if result.finished else "dnf"
                        )
                    except ReproError as exc:
                        out.append(type(exc).__name__)
                return out
            finally:
                svc.close()

        first, second = verdicts(), verdicts()
        assert first == second
        assert set(first) != {"ok"}  # some faults fired

    def test_storm_recovers_when_faults_stop(self, chain_db, baselines):
        """After the injector is removed, the same service serves cleanly."""
        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=4,
            queue_capacity=64,
            fault_injector=FaultInjector("exec.join:error:0.5", seed=1),
        )
        try:
            stormed = svc.run_all(
                storm_queries(repetitions=4), return_exceptions=True
            )
            assert any(isinstance(o, ReproError) for o in stormed)
            svc.fault_injector = None  # chaos over
            sql = storm_queries()[0]
            result = svc.execute(sql)
            assert result.finished
            assert result.relation.same_content(baselines[sql])
        finally:
            svc.close()


class TestDrainUnderStorm:
    def test_drain_mid_storm_leaves_no_stragglers(self, chain_db, baselines):
        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=4,
            queue_capacity=256,
            fault_injector=FaultInjector(
                "exec.join:latency:0.5:2", seed=3
            ),  # latency keeps queries in flight while we drain
        )
        queries = storm_queries(repetitions=12)
        futures = [svc.submit(sql) for sql in queries]
        assert svc.drain(grace_seconds=30.0)
        outcomes = {"ok": 0, "typed": 0, "cancelled": 0}
        for sql, future in zip(queries, futures):
            try:
                result = future.result(timeout=RESULT_TIMEOUT)
            except CancelledError:
                outcomes["cancelled"] += 1  # queued, never started
            except ReproError:
                outcomes["typed"] += 1  # includes QueryCancelled mid-flight
            else:
                outcomes["ok"] += 1
                if result.finished:
                    assert result.relation.same_content(baselines[sql])
        assert sum(outcomes.values()) == len(queries)
        pool = svc.snapshot()["pool"]
        assert pool["active"] == 0
        # Drain restored the engine's built-in planner.
        assert svc.dbms.optimizer_handler is None


def shard_storm_queries(repetitions: int = 6):
    """A multi-template storm, so the faults hit more than one shard."""
    templates = [
        CHAIN_SQL.strip() + " AND r0.a0 < {c}",
        CHAIN_SQL.strip() + " AND r1.a1 < {c}",
        "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {c}",
        "SELECT r2.a2, r3.a3 FROM r2, r3 "
        "WHERE r2.b2 = r3.a3 AND r2.a2 < {c}",
    ]
    return [
        template.format(c=3 + (rep % 4))
        for rep in range(repetitions)
        for template in templates
    ]


class TestShardChaosStorm:
    """The chaos contract must survive the process boundary: every query
    submitted to a fault-stormed shard cluster resolves as the correct
    rows, an explicit DNF, or a typed error — across ``SHARDS`` worker
    processes (CI's shards job raises ``HDQO_TEST_SHARDS`` to 8)."""

    def test_shard_storm_correct_or_typed_error(self, chain_db):
        from repro.shard import ShardConfig, ShardRouter

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        queries = shard_storm_queries()
        answers = {}
        for sql in queries:
            if sql not in answers:
                result = dbms.run_sql(sql)
                assert result.finished
                answers[sql] = result.relation

        config = ShardConfig(
            database=chain_db,
            max_width=2,
            workers=2,
            queue_capacity=len(queries),
            fault_spec=STORM_FAULTS,
            seed=42,
            parallel_workers=PARALLEL_WORKERS,
        )
        router = ShardRouter(config, shards=SHARDS)
        try:
            outcomes = router.run_all(queries, return_exceptions=True)
            correct = explicit_dnf = typed_errors = 0
            for sql, outcome in zip(queries, outcomes):
                if isinstance(outcome, ReproError):
                    typed_errors += 1  # reconstructed across the boundary
                elif isinstance(outcome, DBMSResult) and not outcome.finished:
                    explicit_dnf += 1
                else:
                    assert isinstance(outcome, DBMSResult)
                    assert outcome.relation.same_content(answers[sql])
                    correct += 1
            assert correct > 0
            assert correct + explicit_dnf + typed_errors == len(queries)
        finally:
            assert router.drain(grace_seconds=30.0)
        assert router.lock_violations() == {}

    def test_drain_mid_shard_storm_every_query_resolves(self, chain_db):
        """Cross-shard graceful drain with latency faults keeping queries
        in flight: no future may hang, and every outcome is explicit."""
        from repro.shard import ShardConfig, ShardRouter

        config = ShardConfig(
            database=chain_db,
            max_width=2,
            workers=2,
            queue_capacity=256,
            fault_spec="exec.join:latency:0.5:2",
            seed=3,
            parallel_workers=PARALLEL_WORKERS,
        )
        router = ShardRouter(config, shards=SHARDS)
        queries = shard_storm_queries(repetitions=10)
        futures = [router.submit(sql) for sql in queries]
        router.drain(grace_seconds=30.0)
        outcomes = {"ok": 0, "typed": 0}
        for future in futures:
            try:
                result = future.result(timeout=RESULT_TIMEOUT)
            except ReproError:
                outcomes["typed"] += 1  # QueryCancelled or ShardError
            else:
                assert isinstance(result, DBMSResult)
                outcomes["ok"] += 1
        assert sum(outcomes.values()) == len(queries)
        # Every shard posted its final state; none was killed hard.
        exits = router.worker_exits()
        assert set(exits) == set(range(SHARDS))
        assert all(exit_.drained for exit_ in exits.values())


class TestServiceErrorPaths:
    def test_overload_then_recovery(self, chain_db, baselines):
        """ServiceOverloaded under a full queue; the service then recovers."""
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            release.wait(timeout=30)

        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            queue_capacity=1,
        )
        sql = storm_queries()[0]
        try:
            svc.pool.submit(blocker)  # occupy the only worker
            assert started.wait(timeout=5)
            held = svc.submit(sql)  # fills the one queue slot
            with pytest.raises(ServiceOverloaded) as err:
                svc.submit(sql)
            assert err.value.capacity == 1
            assert svc.snapshot()["queries"]["rejected"] == 1
            release.set()  # load sheds; the held query now runs
            result = held.result(timeout=RESULT_TIMEOUT)
            assert result.relation.same_content(baselines[sql])
        finally:
            release.set()
            svc.close()

    def test_worker_raising_mid_query_leaves_pool_healthy(
        self, chain_db, baselines
    ):
        from repro.errors import SqlSyntaxError

        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=2
        )
        sql = storm_queries()[0]
        try:
            with pytest.raises(SqlSyntaxError):
                svc.submit("THIS IS NOT SQL").result(timeout=RESULT_TIMEOUT)
            # Every worker still serves, and correctly.
            results = svc.run_all([sql] * 4)
            for result in results:
                assert result.relation.same_content(baselines[sql])
            pool = svc.snapshot()["pool"]
            assert pool["active"] == 0
            assert pool["completed"] == pool["submitted"]
        finally:
            svc.close()

    def test_analyze_racing_single_flight_build(self, chain_db, baselines):
        """Statistics refreshes racing concurrent plan builds never yield a
        stale or wrong plan — at worst an extra rebuild."""
        svc = make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=4,
            queue_capacity=64,
        )
        sql = storm_queries()[0]
        stop = threading.Event()

        def analyzer():
            while not stop.is_set():
                chain_db.analyze()  # bumps the statistics version

        thread = threading.Thread(target=analyzer)
        thread.start()
        try:
            for _ in range(5):
                results = svc.run_all([sql] * 8)
                for result in results:
                    assert result.relation.same_content(baselines[sql])
        finally:
            stop.set()
            thread.join(timeout=10)
            svc.close()
        # The race settles: a fresh execute plans against current stats.
        with make_service(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=1
        ) as fresh:
            result = fresh.execute(sql)
            assert result.optimizer == "q-hd"
            assert result.relation.same_content(baselines[sql])


class TestWorkerKillStorm:
    """Crash chaos on top of the self-healing layer: SIGKILL random live
    shard workers (~10 % per tick, at most ``SHARDS - 1`` total so the
    ring always has a live node) while a multi-template workload runs.
    The supervised contract is *correct or typed, then fully healed*:
    every query resolves as the exact fault-free rows or a typed
    :class:`~repro.errors.ReproError`, availability stays >= 99 %, and
    the cluster returns to the full shard count before draining clean."""

    def test_kill_storm_correct_or_typed_then_full_strength(self, chain_db):
        import random
        import signal as signal_module
        import time

        from repro.shard import ShardConfig, ShardRouter, SupervisorPolicy

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        queries = shard_storm_queries(repetitions=30)
        answers = {}
        for sql in queries:
            if sql not in answers:
                result = dbms.run_sql(sql)
                assert result.finished
                answers[sql] = result.relation

        config = ShardConfig(
            database=chain_db,
            max_width=2,
            workers=2,
            queue_capacity=len(queries),
            seed=42,
            parallel_workers=PARALLEL_WORKERS,
        )
        policy = SupervisorPolicy(
            max_restarts=12,
            backoff_base_seconds=0.02,
            backoff_cap_seconds=0.2,
            seed=42,
        )
        router = ShardRouter(config, shards=SHARDS, supervise=policy)
        stop = threading.Event()
        kills = []

        def kill(rng):
            pids = {
                shard_id: pid
                for shard_id, pid in router.shard_pids().items()
                if pid is not None
            }
            if not pids:
                return
            victim = rng.choice(sorted(pids))
            try:
                os.kill(pids[victim], signal_module.SIGKILL)
            except (ProcessLookupError, PermissionError):
                return
            kills.append(victim)

        def storm():
            rng = random.Random(42)
            # One guaranteed kill, then ~10 % per 10 ms tick, capped at
            # SHARDS - 1 total so at least one shard is always live.
            if not stop.wait(0.02):
                kill(rng)
            while not stop.wait(0.01) and len(kills) < SHARDS - 1:
                if rng.random() < 0.1:
                    kill(rng)

        killer = threading.Thread(target=storm, daemon=True)
        try:
            killer.start()
            outcomes = router.run_all(queries, return_exceptions=True)
            stop.set()
            killer.join(timeout=10.0)

            correct = typed_errors = 0
            for sql, outcome in zip(queries, outcomes):
                if isinstance(outcome, ReproError):
                    typed_errors += 1  # explicit, never a wrong answer
                else:
                    assert isinstance(outcome, DBMSResult)
                    assert outcome.finished
                    assert outcome.relation.same_content(answers[sql])
                    correct += 1
            assert correct + typed_errors == len(queries)
            availability = correct / len(queries)
            assert availability >= 0.99, (
                f"availability {availability:.2%} < 99% "
                f"({typed_errors} typed errors, {len(kills)} kills)"
            )

            # The supervisor restores the full shard count.
            deadline = time.monotonic() + 30.0
            while (
                len(router.live_shards()) < SHARDS
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert sorted(router.live_shards()) == list(range(SHARDS))

            # Post-storm traffic is byte-identical to the fault-free run.
            for sql, outcome in zip(queries[:8], router.run_all(queries[:8])):
                assert outcome.relation.same_content(answers[sql])

            if kills:
                metrics = router.snapshot()["supervisor"]["metrics"]
                assert metrics["worker_deaths"] >= len(kills)
                assert metrics["restarts"] >= len(kills)
        finally:
            stop.set()
            assert router.drain(grace_seconds=30.0)
        assert router.lock_violations() == {}

"""Tests for the top-level public API surface."""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_exports_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_quickstart_surface(self, chain_db, chain_sql):
        """The README quickstart works straight off the top-level package."""
        optimizer = repro.HybridOptimizer(chain_db, max_width=2)
        plan = optimizer.optimize(chain_sql)
        result = plan.execute()

        dbms = repro.SimulatedDBMS(chain_db, repro.COMMDB_PROFILE)
        baseline = dbms.run_sql(chain_sql)
        assert baseline.relation.same_content(result.relation)

    def test_width_helpers(self):
        hg = repro.Hypergraph.from_dict(
            {"a": ["X", "Y"], "b": ["Y", "Z"], "c": ["Z", "X"]}
        )
        assert not repro.is_acyclic(hg)
        assert repro.hypertree_width(hg) == 2
        assert repro.det_k_decomp(hg, 2) is not None

    def test_errors_catchable_from_root(self):
        with pytest.raises(repro.ReproError):
            repro.parse_sql("not sql at all !!!")

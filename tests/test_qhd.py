"""Tests for Algorithm q-HypertreeDecomp: atom assignment and Optimize."""

import pytest

from repro.errors import DecompositionError, DecompositionNotFound
from repro.hypergraph import Hypergraph
from repro.query.builder import ConjunctiveQueryBuilder
from repro.core.detkdecomp import det_k_decomp
from repro.core.hypertree import Hypertree, make_node
from repro.core.qhd import assign_atoms, procedure_optimize, q_hypertree_decomp


def chain_query(n, output=("V0",)):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output(*output).build()


def line_query(n, output=("V0",)):
    builder = ConjunctiveQueryBuilder("line")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{i + 1}")
    return builder.output(*output).build()


class TestQHypertreeDecomp:
    def test_basic_chain(self):
        q = chain_query(6)
        tree = q_hypertree_decomp(q, 2)
        assert tree.is_q_hypertree_decomposition(q.output_variables)
        assert q.output_variables <= tree.root.chi

    def test_failure_raised(self):
        # Covering all 7 distinct variables of a 7-line at the root needs
        # more than 2 edges.
        q = line_query(7, output=tuple(f"V{i}" for i in range(8)))
        with pytest.raises(DecompositionNotFound):
            q_hypertree_decomp(q, 2)

    def test_every_atom_lands_in_some_lambda(self):
        q = chain_query(8)
        tree = q_hypertree_decomp(q, 3)
        placed = set()
        for node in tree.root.walk():
            placed.update(node.lam)
        assert placed == {a.name for a in q.atoms}

    def test_empty_query_rejected(self):
        from repro.query.conjunctive import Atom, ConjunctiveQuery, Constant

        q = ConjunctiveQuery([Atom("a", "r", (Constant(1),))])
        with pytest.raises(DecompositionError):
            q_hypertree_decomp(q, 2)

    def test_example4_style_output_forces_width_2(self):
        # An acyclic line whose output spans both endpoints: the q-HD must
        # pay width 2 even though hw = 1 (the paper's Example 4).
        q = line_query(6, output=("V0", "V6"))
        tree = q_hypertree_decomp(q, 2)
        assert {"V0", "V6"} <= tree.root.chi
        assert tree.width >= 2


class TestAssignAtoms:
    def test_assigns_missing_atoms(self):
        q = chain_query(4)
        hg = q.hypergraph()
        # A decomposition covering everything with only two λ atoms per
        # node; p1/p3 are χ-covered but absent from λ.
        child = make_node(chi=["V2", "V3", "V0"], lam=["p2"])
        root = make_node(chi=["V0", "V1", "V2"], lam=["p0", "p1"], children=[child])
        # Fix the tree so every edge is χ-covered:
        child.chi = frozenset({"V2", "V3", "V0"})
        tree = Hypertree(root, hg)
        assign_atoms(tree, q)
        placed = [name for node in tree.root.walk() for name in node.lam]
        assert sorted(placed) >= sorted({a.name for a in q.atoms} & set(placed))
        assert "p3" in placed  # was missing, covered by child's χ

    def test_uncovered_atom_rejected(self):
        q = chain_query(3)
        hg = q.hypergraph()
        root = make_node(chi=["V0", "V1"], lam=["p0"])
        tree = Hypertree(root, hg)
        with pytest.raises(DecompositionError):
            assign_atoms(tree, q)

    def test_noop_when_all_assigned(self):
        q = chain_query(4)
        tree = q_hypertree_decomp(q, 2, optimize=False)
        before = [node.lam for node in tree.root.walk()]
        assign_atoms(tree, q)
        assert [node.lam for node in tree.root.walk()] == before


class TestProcedureOptimize:
    def test_removes_redundant_bounding_atoms(self):
        # det-k-decomp's first-found decomposition of a chain duplicates
        # the root cover atom down the tree (the paper's HD₁ pattern).
        q = chain_query(6)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        total_before = sum(len(n.lam) for n in tree.root.walk())
        removed = procedure_optimize(tree)
        total_after = sum(len(n.lam) for n in tree.root.walk())
        assert removed > 0
        assert total_after == total_before - removed

    def test_guards_recorded(self):
        q = chain_query(6)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        procedure_optimize(tree)
        guard_count = sum(len(n.guards) for n in tree.root.walk())
        assert guard_count > 0
        for node in tree.root.walk():
            for atom, guard in node.guards.items():
                assert guard in node.children
                assert atom not in node.lam

    def test_never_removes_last_occurrence(self):
        q = chain_query(6)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        procedure_optimize(tree)
        placed = set()
        for node in tree.root.walk():
            placed.update(node.lam)
        assert placed == {a.name for a in q.atoms}

    def test_idempotent(self):
        q = chain_query(6)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        procedure_optimize(tree)
        assert procedure_optimize(tree) == 0

    def test_cost_k_decomp_output_already_lean(self):
        # With the min-cost search, Optimize usually finds nothing to strip.
        q = chain_query(6)
        tree = q_hypertree_decomp(q, 2, optimize=False)
        removed = procedure_optimize(tree)
        assert removed >= 0  # lean trees stay lean; nothing breaks

"""Property-based tests for the SQL → CQ(Q) translation invariants."""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.query import ast
from repro.query.translate import sql_to_conjunctive

from tests.test_parser_properties import random_query


def schema_for(query: ast.SelectQuery):
    """A permissive schema: every table owns every column it is asked for."""
    columns = defaultdict(set)
    aliases = {t.alias: t.relation for t in query.tables}

    def note(expr):
        for ref in ast.column_refs(expr):
            if ref.table in aliases:
                columns[aliases[ref.table]].add(ref.column)

    for item in query.select_items:
        if not isinstance(item.expr, ast.Star):
            note(item.expr)
    for predicate in query.predicates:
        if isinstance(predicate, ast.InList):
            note(predicate.expr)
        else:
            note(predicate.left)
            note(predicate.right)
    for column in query.group_by:
        note(column)
    # Every relation needs at least one column.
    return {
        t.relation: sorted(columns[t.relation]) or ["filler"]
        for t in query.tables
    }


@settings(max_examples=100, deadline=None)
@given(query=random_query())
def test_translation_invariants(query):
    schema = schema_for(query)
    try:
        tr = sql_to_conjunctive(query, schema)
    except QueryError:
        # Legitimately rejected inputs (e.g. same column name landing in
        # two relations and referenced unqualified) are fine.
        return

    cq = tr.query

    # One atom per FROM entry, in order, named by alias.
    assert [a.name for a in cq.atoms] == [t.alias for t in query.tables]
    assert [a.relation for a in cq.atoms] == [t.relation for t in query.tables]

    # Every output variable occurs in some atom.
    body_vars = cq.variables
    assert set(cq.output) <= body_vars

    # Hypergraph vertices are exactly the query variables.
    hg = cq.hypergraph()
    assert hg.vertices <= body_vars

    # Every equality class binding refers to an existing alias/column.
    for variable, bindings in tr.variable_bindings.items():
        for alias, column in bindings.items():
            relation = dict((t.alias, t.relation) for t in query.tables)[alias]
            assert column in schema[relation]

    # Every filter is attached to an alias of the query.
    aliases = {t.alias for t in query.tables}
    for alias, filters in tr.atom_filters.items():
        assert alias in aliases

    # Join conditions produce variables carried by at least two atoms.
    for predicate in query.predicates:
        if isinstance(predicate, ast.Comparison) and predicate.is_equijoin:
            left = tr.resolve_variable(predicate.left)
            right = tr.resolve_variable(predicate.right)
            assert left == right  # merged into one equivalence class


@settings(max_examples=60, deadline=None)
@given(query=random_query())
def test_translation_is_deterministic(query):
    schema = schema_for(query)
    try:
        tr1 = sql_to_conjunctive(query, schema)
        tr2 = sql_to_conjunctive(query, schema)
    except QueryError:
        return
    assert tr1.query == tr2.query
    assert tr1.variable_bindings == tr2.variable_bindings

"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.query import ast
from repro.query.parser import parse_sql


class TestBasicQueries:
    def test_minimal(self):
        q = parse_sql("SELECT a FROM t")
        assert len(q.select_items) == 1
        assert q.tables == (ast.TableRef("t", "t"),)
        assert q.predicates == ()

    def test_star(self):
        q = parse_sql("SELECT * FROM t")
        assert isinstance(q.select_items[0].expr, ast.Star)

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        q = parse_sql("SELECT n1.n_name FROM nation n1, nation AS n2")
        assert q.tables == (
            ast.TableRef("nation", "n1"),
            ast.TableRef("nation", "n2"),
        )

    def test_select_alias_forms(self):
        q = parse_sql("SELECT a AS x, b y FROM t")
        assert q.select_items[0].alias == "x"
        assert q.select_items[1].alias == "y"

    def test_qualified_columns(self):
        q = parse_sql("SELECT t.a FROM t WHERE t.a = t.b")
        assert q.select_items[0].expr == ast.ColumnRef("t", "a")

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT a FROM t;").tables[0].relation == "t"

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 10").limit == 10


class TestWhere:
    def test_conjunction_flattened(self):
        q = parse_sql("SELECT a FROM t WHERE a = b AND b = c AND c > 5")
        assert len(q.predicates) == 3

    def test_equijoin_detection(self):
        q = parse_sql("SELECT a FROM t, s WHERE t.a = s.b AND t.c = 1")
        assert len(q.join_conditions) == 1
        assert len(q.filter_conditions) == 1

    def test_between_desugars(self):
        q = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert len(q.predicates) == 2
        assert q.predicates[0].op == ">="
        assert q.predicates[1].op == "<="

    def test_or_rejected(self):
        with pytest.raises(SqlSyntaxError, match="OR"):
            parse_sql("SELECT a FROM t WHERE a = 1 OR a = 2")

    def test_in_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE a IN b")

    def test_not_rejected(self):
        with pytest.raises(SqlSyntaxError, match="NOT"):
            parse_sql("SELECT a FROM t WHERE NOT a = 1")

    def test_like_supported(self):
        q = parse_sql("SELECT a FROM t WHERE a LIKE 'x%'")
        assert q.predicates[0].op == "like"
        assert q.predicates[0].right == ast.Literal("x%")
        assert not q.predicates[0].is_equijoin

    def test_nested_select_rejected(self):
        with pytest.raises(SqlSyntaxError, match="nested"):
            parse_sql("SELECT a FROM (SELECT a FROM t) s")

    def test_string_comparison(self):
        q = parse_sql("SELECT a FROM t WHERE name = 'ASIA'")
        assert q.predicates[0].right == ast.Literal("ASIA")


class TestDatesAndIntervals:
    def test_date_literal(self):
        q = parse_sql("SELECT a FROM t WHERE d >= date '1994-01-01'")
        assert q.predicates[0].right == ast.Literal("1994-01-01")

    def test_invalid_date_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE d >= date 'not-a-date'")

    def test_interval_year_folded(self):
        q = parse_sql(
            "SELECT a FROM t WHERE d < date '1994-01-01' + interval '1' year"
        )
        assert q.predicates[0].right == ast.Literal("1995-01-01")

    def test_interval_month_folded(self):
        q = parse_sql(
            "SELECT a FROM t WHERE d < date '1994-11-15' + interval '3' month"
        )
        assert q.predicates[0].right == ast.Literal("1995-02-15")

    def test_interval_day_subtraction(self):
        q = parse_sql(
            "SELECT a FROM t WHERE d < date '1994-01-01' - interval '1' day"
        )
        assert q.predicates[0].right == ast.Literal("1993-12-31")

    def test_interval_clamps_month_end(self):
        q = parse_sql(
            "SELECT a FROM t WHERE d < date '1994-01-31' + interval '1' month"
        )
        assert q.predicates[0].right == ast.Literal("1994-02-28")

    def test_interval_on_non_date_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE d < a + interval '1' year")


class TestExpressions:
    def test_arithmetic_precedence(self):
        q = parse_sql("SELECT a + b * c FROM t")
        expr = q.select_items[0].expr
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_parentheses(self):
        q = parse_sql("SELECT (a + b) * c FROM t")
        expr = q.select_items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_folds_literals(self):
        q = parse_sql("SELECT -5 FROM t")
        assert q.select_items[0].expr == ast.Literal(-5)

    def test_aggregate_call(self):
        q = parse_sql("SELECT sum(a * (1 - b)) AS revenue FROM t")
        expr = q.select_items[0].expr
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "sum"
        assert q.select_items[0].output_name == "revenue"

    def test_count_star(self):
        q = parse_sql("SELECT count(*) FROM t")
        expr = q.select_items[0].expr
        assert expr.name == "count"
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        q = parse_sql("SELECT count(DISTINCT a) FROM t")
        assert q.select_items[0].expr.distinct

    def test_float_literal(self):
        q = parse_sql("SELECT a FROM t WHERE x > 0.05")
        assert q.predicates[0].right == ast.Literal(0.05)


class TestGroupOrder:
    def test_group_by(self):
        q = parse_sql("SELECT a, count(*) FROM t GROUP BY a")
        assert q.group_by == (ast.ColumnRef(None, "a"),)
        assert q.has_aggregates

    def test_order_by_directions(self):
        q = parse_sql("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.descending for o in q.order_by] == [True, False, False]

    def test_full_tpch_q5_parses(self):
        from repro.workloads.tpch_queries import query_q5

        q = parse_sql(query_q5())
        assert len(q.tables) == 6
        assert len(q.predicates) == 9  # 6 joins + 3 filters (date folded)
        assert q.group_by
        assert q.order_by[0].descending

    def test_full_tpch_q8_parses(self):
        from repro.workloads.tpch_queries import query_q8

        q = parse_sql(query_q8())
        assert len(q.tables) == 8
        aliases = [t.alias for t in q.tables]
        assert "n1" in aliases and "n2" in aliases


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_sql("SELECT a FROM t 42 42")

    def test_empty_input(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("")

    def test_missing_comparison(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE a")

    def test_duplicate_alias(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_sql("SELECT a FROM t x, s x")


class TestRoundTrip:
    def test_to_sql_reparses(self):
        original = parse_sql(
            "SELECT a, sum(b) AS total FROM t, s WHERE t.a = s.a AND b > 3 "
            "GROUP BY a ORDER BY total DESC LIMIT 5"
        )
        again = parse_sql(original.to_sql())
        assert again == original

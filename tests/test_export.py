"""Tests for experiment-result export (CSV / JSON / Markdown)."""

import csv
import json

import pytest

from repro.bench.export import (
    render_markdown_report,
    render_markdown_table,
    result_to_rows,
    write_csv,
    write_json,
)
from repro.bench.harness import ExperimentResult, RunRecord


def record(system, point, work=100, finished=True):
    return RunRecord(
        system=system,
        point=point,
        work=work,
        simulated_seconds=work * 1e-6,
        elapsed_seconds=0.01,
        finished=finished,
        answer_rows=3,
    )


@pytest.fixture()
def result():
    r = ExperimentResult("figX", "Test experiment")
    r.add(record("a", 1, 10))
    r.add(record("b", 1, 20))
    r.add(record("a", 2, 30))
    r.add(record("b", 2, 0, finished=False))
    r.notes.append("a note")
    return r


class TestRows:
    def test_flattening(self, result):
        rows = result_to_rows(result)
        assert len(rows) == 4
        assert rows[0]["experiment"] == "figX"
        assert rows[0]["work"] == 10


class TestCsvJson:
    def test_csv_written(self, result, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([result], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["system"] == "a"

    def test_json_written(self, result, tmp_path):
        path = tmp_path / "out.json"
        write_json([result], path)
        doc = json.loads(path.read_text())
        assert doc[0]["experiment"] == "figX"
        assert doc[0]["notes"] == ["a note"]
        assert len(doc[0]["records"]) == 4


class TestMarkdown:
    def test_table_shape(self, result):
        text = render_markdown_table(result, point_label="atoms")
        lines = text.splitlines()
        assert lines[0] == "| atoms | a | b |"
        assert "DNF" in text

    def test_missing_cell(self, result):
        result.add(record("c", 3))
        text = render_markdown_table(result)
        assert "–" in text

    def test_report_sections(self, result):
        text = render_markdown_report(
            [result], paper_notes={"figX": "the paper says X"}
        )
        assert "## figX" in text
        assert "the paper says X" in text
        assert "*a note*" in text

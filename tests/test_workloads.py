"""Tests for the TPC-H and synthetic workload generators."""

import pytest

from repro.errors import QueryError
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
    synthetic_workload,
)
from repro.workloads.tpch import (
    NATIONS,
    REGIONS,
    TPCH_SCHEMA,
    generate_tpch_database,
    tpch_row_counts,
)
from repro.workloads.tpch_queries import TPCH_QUERIES, query_q3, query_q5, query_q8, query_q10


class TestTpchRowCounts:
    def test_fixed_tables(self):
        counts = tpch_row_counts(500)
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_linear_scaling(self):
        small = tpch_row_counts(200)
        large = tpch_row_counts(1000)
        assert large["lineitem"] == pytest.approx(5 * small["lineitem"], rel=0.05)

    def test_dbgen_proportions(self):
        counts = tpch_row_counts(1000)
        assert counts["lineitem"] == pytest.approx(4 * counts["orders"], rel=0.05)
        assert counts["customer"] == pytest.approx(15 * counts["supplier"], rel=0.05)


class TestTpchGeneration:
    def test_deterministic(self):
        db1 = generate_tpch_database(size_mb=50, seed=9)
        db2 = generate_tpch_database(size_mb=50, seed=9)
        assert db1.table("orders").tuples == db2.table("orders").tuples

    def test_all_tables_present(self, tiny_tpch):
        for schema in TPCH_SCHEMA:
            assert schema.name in tiny_tpch

    def test_foreign_keys_in_range(self, tiny_tpch):
        n_customers = len(tiny_tpch.table("customer"))
        custkey_idx = tiny_tpch.table("orders").index_of("o_custkey")
        for row in tiny_tpch.table("orders").tuples:
            assert 1 <= row[custkey_idx] <= n_customers
        nationkey_idx = tiny_tpch.table("supplier").index_of("s_nationkey")
        for row in tiny_tpch.table("supplier").tuples:
            assert 0 <= row[nationkey_idx] < len(NATIONS)

    def test_region_names(self, tiny_tpch):
        names = set(tiny_tpch.table("region").column("r_name"))
        assert names == set(REGIONS)

    def test_dates_in_dbgen_window(self, tiny_tpch):
        idx = tiny_tpch.table("orders").index_of("o_orderdate")
        for row in tiny_tpch.table("orders").tuples:
            assert "1992-01-01" <= row[idx] <= "1998-08-02"

    def test_partsupp_key_unique(self, tiny_tpch):
        ps = tiny_tpch.table("partsupp")
        keys = list(zip(ps.column("ps_partkey"), ps.column("ps_suppkey")))
        assert len(keys) == len(set(keys))

    def test_analyze_flag(self):
        db = generate_tpch_database(size_mb=50, seed=1, analyze=True)
        assert db.has_statistics()

    def test_types_validate(self):
        db = generate_tpch_database(size_mb=50, seed=1)
        for schema in TPCH_SCHEMA:
            relation = db.table(schema.name)
            for row in relation.tuples[:20]:
                for (attr, attr_type), value in zip(schema.attributes, row):
                    assert attr_type.validate(value), (schema.name, attr, value)


class TestTpchQueries:
    @pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
    def test_queries_parse_and_translate(self, name, tiny_tpch):
        sql = TPCH_QUERIES[name]()
        tr = sql_to_conjunctive(parse_sql(sql), tiny_tpch.schema.as_mapping())
        assert tr.query.atoms

    def test_q5_is_cyclic_width_2(self, tiny_tpch):
        from repro.core.detkdecomp import hypertree_width
        from repro.hypergraph import is_acyclic

        tr = sql_to_conjunctive(parse_sql(query_q5()), tiny_tpch.schema.as_mapping())
        hg = tr.query.hypergraph()
        assert not is_acyclic(hg)
        assert hypertree_width(hg) == 2

    def test_q8_has_8_atoms_and_qhd_width_2(self, tiny_tpch):
        # Q8's join graph is a tree, but its output variables span lineitem
        # and the supplier-side nation, so any q-hypertree decomposition
        # needs width ≥ 2 at the root (the paper's Example 4 effect — this
        # is why the paper counts Q8 among its width-2 queries).
        from repro.core.qhd import q_hypertree_decomp
        from repro.errors import DecompositionNotFound

        tr = sql_to_conjunctive(parse_sql(query_q8()), tiny_tpch.schema.as_mapping())
        assert len(tr.query.atoms) == 8
        with pytest.raises(DecompositionNotFound):
            q_hypertree_decomp(tr.query, 1)
        tree = q_hypertree_decomp(tr.query, 2)
        assert tree.is_q_hypertree_decomposition(tr.query.output_variables)

    def test_q3_q10_acyclic(self, tiny_tpch):
        from repro.hypergraph import is_acyclic

        for sql in (query_q3(), query_q10()):
            tr = sql_to_conjunctive(parse_sql(sql), tiny_tpch.schema.as_mapping())
            assert is_acyclic(tr.query.hypergraph())

    def test_q7_double_nation_reference(self, tiny_tpch):
        from repro.workloads.tpch_queries import query_q7

        tr = sql_to_conjunctive(parse_sql(query_q7()), tiny_tpch.schema.as_mapping())
        nations = [a for a in tr.query.atoms if a.relation == "nation"]
        assert len(nations) == 2

    def test_q9_partsupp_absorbed_by_lineitem(self, tiny_tpch):
        # partsupp's (partkey, suppkey) variables are a subset of
        # lineitem's, so GYO absorbs it: CQ(Q9) is acyclic.
        from repro.hypergraph import is_acyclic
        from repro.workloads.tpch_queries import query_q9

        tr = sql_to_conjunctive(parse_sql(query_q9()), tiny_tpch.schema.as_mapping())
        assert len(tr.query.atoms) == 6
        assert is_acyclic(tr.query.hypergraph())

    def test_q7_q9_execute_consistently(self, tiny_tpch):
        from repro.core.optimizer import HybridOptimizer
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
        from repro.workloads.tpch_queries import query_q7, query_q9

        dbms = SimulatedDBMS(tiny_tpch, COMMDB_PROFILE)
        optimizer = HybridOptimizer(tiny_tpch, max_width=3)
        for sql in (query_q7(), query_q9()):
            engine = dbms.run_sql(sql)
            qhd = optimizer.optimize(sql).execute()
            assert engine.relation.same_content(qhd.relation)

    def test_parameterization(self):
        sql = query_q5(region="EUROPE", date_from="1995-06-01")
        assert "EUROPE" in sql
        assert "1995-06-01" in sql


class TestSynthetic:
    def test_config_validation(self):
        with pytest.raises(QueryError):
            SyntheticConfig(n_atoms=1)
        with pytest.raises(QueryError):
            SyntheticConfig(n_atoms=3, selectivity=0)
        with pytest.raises(QueryError):
            SyntheticConfig(n_atoms=3, cardinality=0)

    def test_distinct_values(self):
        config = SyntheticConfig(n_atoms=3, cardinality=500, selectivity=30)
        assert config.distinct_values == 150

    def test_label(self):
        config = SyntheticConfig(n_atoms=4, cyclic=True)
        assert "chain" in config.label

    def test_database_shape(self):
        config = SyntheticConfig(n_atoms=5, cardinality=100, selectivity=50)
        db = generate_synthetic_database(config)
        assert len(db) == 5
        assert all(len(db.table(f"rel{i}")) == 100 for i in range(5))

    def test_values_within_domain(self):
        config = SyntheticConfig(n_atoms=2, cardinality=50, selectivity=10, seed=3)
        db = generate_synthetic_database(config)
        v = config.distinct_values
        for row in db.table("rel0").tuples:
            assert all(0 <= value < v for value in row)

    def test_deterministic(self):
        config = SyntheticConfig(n_atoms=3, seed=5)
        db1 = generate_synthetic_database(config)
        db2 = generate_synthetic_database(config)
        assert db1.table("rel1").tuples == db2.table("rel1").tuples

    def test_acyclic_query_structure(self):
        config = SyntheticConfig(n_atoms=4, cyclic=False)
        sql = synthetic_query_sql(config)
        db = generate_synthetic_database(config)
        tr = sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())
        from repro.hypergraph import is_acyclic

        assert is_acyclic(tr.query.hypergraph())

    def test_chain_query_structure(self):
        config = SyntheticConfig(n_atoms=4, cyclic=True)
        sql = synthetic_query_sql(config)
        db = generate_synthetic_database(config)
        tr = sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())
        from repro.core.detkdecomp import hypertree_width
        from repro.hypergraph import is_acyclic

        hg = tr.query.hypergraph()
        assert not is_acyclic(hg)
        assert hypertree_width(hg) == 2

    def test_workload_helper(self):
        db, sql = synthetic_workload(SyntheticConfig(n_atoms=3))
        assert len(db) == 3
        assert "SELECT" in sql

"""Property-based tests for the SQL parser: round-trips and total behaviour."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, SqlSyntaxError
from repro.query import ast
from repro.query.parser import parse_sql

identifier = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s
    not in {
        "select", "distinct", "from", "where", "and", "or", "not", "group",
        "order", "by", "as", "asc", "desc", "limit", "between", "date",
        "interval", "year", "month", "day", "like", "in", "is", "null",
        "exists", "sum", "count", "min", "max", "avg",
    }
)

literal_value = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(alphabet=string.ascii_letters + " ", min_size=0, max_size=12),
)


@st.composite
def random_query(draw):
    """A random SelectQuery built from valid components."""
    n_tables = draw(st.integers(min_value=1, max_value=4))
    names = draw(
        st.lists(identifier, min_size=n_tables, max_size=n_tables, unique=True)
    )
    tables = tuple(ast.TableRef(name, name) for name in names)

    def column():
        table = draw(st.sampled_from(names))
        col = draw(identifier)
        return ast.ColumnRef(table, col)

    n_select = draw(st.integers(min_value=1, max_value=3))
    select_items = tuple(
        ast.SelectItem(column(), alias=draw(st.one_of(st.none(), identifier)))
        for _ in range(n_select)
    )

    predicates = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["join", "filter", "inlist"]))
        if kind == "join":
            predicates.append(ast.Comparison("=", column(), column()))
        elif kind == "filter":
            op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
            predicates.append(
                ast.Comparison(op, column(), ast.Literal(draw(literal_value)))
            )
        else:
            values = tuple(
                draw(st.lists(literal_value, min_size=1, max_size=3))
            )
            predicates.append(ast.InList(column(), values))

    return ast.SelectQuery(
        select_items=select_items,
        tables=tables,
        predicates=tuple(predicates),
        distinct=draw(st.booleans()),
        limit=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=99))),
    )


@settings(max_examples=120, deadline=None)
@given(query=random_query())
def test_to_sql_round_trips(query):
    """Rendering to SQL and reparsing yields the identical AST."""
    sql = query.to_sql()
    reparsed = parse_sql(sql)
    assert reparsed == query


@settings(max_examples=200, deadline=None)
@given(text=st.text(max_size=80))
def test_parser_is_total_on_garbage(text):
    """Arbitrary input either parses or raises a library error — never an
    unexpected exception type."""
    try:
        parse_sql(text)
    except ReproError:
        pass  # SqlSyntaxError / QueryError are the contract


@settings(max_examples=100, deadline=None)
@given(
    prefix=st.sampled_from(
        ["SELECT a FROM t WHERE ", "SELECT a FROM t GROUP BY ", "SELECT "]
    ),
    junk=st.text(alphabet="abc()=<>,'%123 ", max_size=30),
)
def test_parser_is_total_on_truncated_queries(prefix, junk):
    try:
        parse_sql(prefix + junk)
    except ReproError:
        pass

"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DecompositionError,
    DecompositionNotFound,
    ExecutionError,
    HypergraphError,
    OptimizationError,
    QueryError,
    ReproError,
    SchemaError,
    SqlSyntaxError,
    WorkBudgetExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            HypergraphError,
            QueryError,
            SqlSyntaxError,
            SchemaError,
            ExecutionError,
            WorkBudgetExceeded,
            DecompositionError,
            DecompositionNotFound,
            OptimizationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        if exc_type is WorkBudgetExceeded:
            instance = exc_type(10, 11)
        elif exc_type is DecompositionNotFound:
            instance = exc_type("msg", width=2)
        else:
            instance = exc_type("msg")
        assert isinstance(instance, ReproError)

    def test_sql_syntax_error_position(self):
        err = SqlSyntaxError("bad", position=17)
        assert err.position == 17
        assert SqlSyntaxError("bad").position is None

    def test_work_budget_carries_amounts(self):
        err = WorkBudgetExceeded(100, 150)
        assert err.budget == 100
        assert err.spent == 150
        assert "150" in str(err)

    def test_decomposition_not_found_width(self):
        err = DecompositionNotFound("no dice", width=3)
        assert err.width == 3
        assert isinstance(err, DecompositionError)

    def test_single_catch_all(self):
        # An embedding caller can catch the whole library with one clause.
        with pytest.raises(ReproError):
            raise SchemaError("x")

"""End-to-end tests for the simulated DBMS façade."""

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import (
    COMMDB_PROFILE,
    POSTGRES_PROFILE,
    EngineProfile,
    SimulatedDBMS,
)
from repro.engine.scans import atom_relations
from repro.relational import AttributeType, Database, RelationSchema

from tests.conftest import brute_force_answer


class TestRunSql:
    def test_simple_join(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql)
        assert result.finished
        assert result.optimizer == "dp-bushy"
        assert result.relation is not None

    def test_matches_brute_force(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql)
        translation = dbms.translate(chain_sql)
        rels = atom_relations(translation.query, chain_db, translation)
        expected = brute_force_answer(translation.query, rels)
        assert result.answer.same_content(expected)

    def test_postgres_profile_leftdeep(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, POSTGRES_PROFILE)
        result = dbms.run_sql(chain_sql)
        assert result.optimizer == "dp-leftdeep"

    def test_geqo_kicks_in_above_threshold(self, chain_db, chain_sql):
        profile = EngineProfile(name="pg", search="leftdeep", geqo_threshold=3)
        dbms = SimulatedDBMS(chain_db, profile)
        result = dbms.run_sql(chain_sql)  # 4 relations ≥ threshold 3
        assert result.optimizer == "geqo"

    def test_syntactic_mode(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql, optimizer_enabled=False)
        assert result.optimizer == "syntactic"
        baseline = dbms.run_sql(chain_sql)
        assert result.relation.same_content(baseline.relation)

    def test_budget_dnf(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql, work_budget=10)
        assert not result.finished
        assert result.relation is None
        assert result.work > 10

    def test_no_statistics_mode(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql, use_statistics=False)
        assert result.finished
        assert not result.used_statistics
        with_stats = dbms.run_sql(chain_sql, use_statistics=True)
        assert result.relation.same_content(with_stats.relation)

    def test_fresh_database_defaults_to_no_stats(self, chain_sql):
        import random

        rng = random.Random(0)
        db = Database("fresh")
        for i in range(4):
            schema = RelationSchema.of(
                f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
            )
            db.create_table(
                schema, [(rng.randrange(5), rng.randrange(5)) for _ in range(20)]
            )
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql)
        assert not result.used_statistics

    def test_translation_reuse(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        translation = dbms.translate(chain_sql)
        r1 = dbms.run_sql(translation)
        r2 = dbms.run_sql(chain_sql)
        assert r1.relation.same_content(r2.relation)

    def test_explain_renders_plan(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        text = dbms.explain(chain_sql)
        assert "Scan(" in text
        assert "HashJoin" in text

    def test_simulated_seconds_scale_with_profile(self, chain_db, chain_sql):
        fast = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        slow = SimulatedDBMS(
            chain_db,
            EngineProfile(name="slow", work_time_factor=COMMDB_PROFILE.work_time_factor * 4),
        )
        rf = fast.run_sql(chain_sql)
        rs = slow.run_sql(chain_sql)
        assert rs.simulated_seconds > rf.simulated_seconds


class TestPostprocessingThroughSql:
    @pytest.fixture()
    def db(self):
        database = Database("pp")
        database.create_table(
            RelationSchema.of(
                "emp",
                {
                    "dept": AttributeType.STRING,
                    "salary": AttributeType.INT,
                    "bonus": AttributeType.INT,
                },
            ),
            [
                ("eng", 100, 10),
                ("eng", 200, 20),
                ("sales", 150, 15),
                ("sales", 150, 15),
            ],
        )
        database.analyze()
        return database

    def test_group_by_sum(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT dept, sum(salary) AS total FROM emp GROUP BY dept "
            "ORDER BY total DESC"
        )
        # Set semantics: the duplicate (sales,150,15) row collapses.
        assert result.relation.tuples == [("eng", 300), ("sales", 150)]

    def test_aggregate_over_expression(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT dept, sum(salary + bonus) AS gross FROM emp GROUP BY dept"
        )
        rows = dict(result.relation.tuples)
        assert rows["eng"] == 330

    def test_count_column(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT dept, count(salary) AS n FROM emp GROUP BY dept"
        )
        rows = dict(result.relation.tuples)
        assert rows["eng"] == 2  # distinct (dept, salary) bindings
        assert rows["sales"] == 1

    def test_count_star_set_semantics(self, db):
        # Classical CQ answers are sets (the paper's semantics, §4 step 4):
        # count(*) counts distinct out(Q) bindings — here just the group key.
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql("SELECT dept, count(*) AS n FROM emp GROUP BY dept")
        rows = dict(result.relation.tuples)
        assert rows == {"eng": 1, "sales": 1}

    def test_order_limit_distinct(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT DISTINCT salary FROM emp ORDER BY salary DESC LIMIT 2"
        )
        assert result.relation.tuples == [(200,), (150,)]

    def test_scalar_arithmetic_select(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql("SELECT salary * 2 AS double FROM emp WHERE dept = 'eng'")
        assert sorted(result.relation.tuples) == [(200,), (400,)]

    def test_min_max_avg(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT min(salary) AS lo, max(salary) AS hi, avg(bonus) AS mean FROM emp"
        )
        (row,) = result.relation.tuples
        assert row[0] == 100 and row[1] == 200


class TestOptimizerHandler:
    def test_handler_invoked(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        calls = []

        def handler(engine, translation, meter):
            calls.append(translation.query.name)
            answer, plan, _label = engine.plan_and_join(
                translation, meter, True, True
            )
            return answer, "handled:" + plan

        dbms.set_optimizer_handler(handler)
        result = dbms.run_sql(chain_sql)
        assert calls
        assert result.optimizer == "q-hd"
        assert result.plan_text.startswith("handled:")

    def test_bypass_handler(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        dbms.set_optimizer_handler(lambda *a: (_ for _ in ()).throw(AssertionError))
        result = dbms.run_sql(chain_sql, bypass_handler=True)
        assert result.finished

    def test_uninstall(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        dbms.set_optimizer_handler(lambda *a: (_ for _ in ()).throw(AssertionError))
        dbms.set_optimizer_handler(None)
        assert dbms.run_sql(chain_sql).finished

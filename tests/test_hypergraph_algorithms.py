"""Tests for GYO reduction, acyclicity, components, and the primal graph."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph import (
    Hyperedge,
    Hypergraph,
    connected_components,
    gyo_reduction,
    is_acyclic,
    line_hypergraph,
    cycle_hypergraph,
    primal_graph,
    vertex_connected_components,
)
from repro.hypergraph.algorithms import component_frontier


class TestPrimalGraph:
    def test_adjacency(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y", "Z"], "b": ["Z", "W"]})
        adjacency = primal_graph(hg)
        assert adjacency["X"] == {"Y", "Z"}
        assert adjacency["Z"] == {"X", "Y", "W"}
        assert adjacency["W"] == {"Z"}


class TestGyo:
    def test_acyclic_line(self):
        residual, log = gyo_reduction(line_hypergraph(5))
        assert len(residual) == 0
        assert len(log) == 5
        assert log[-1][1] is None  # final survivor

    def test_cycle_is_irreducible(self):
        residual, _ = gyo_reduction(cycle_hypergraph(4, private=0))
        assert len(residual) == 4

    def test_cycle_with_private_vars_still_cyclic(self):
        assert not is_acyclic(cycle_hypergraph(5))

    def test_single_edge_acyclic(self):
        assert is_acyclic(Hypergraph.from_dict({"a": ["X", "Y"]}))

    def test_empty_hypergraph_acyclic(self):
        assert is_acyclic(Hypergraph())

    def test_contained_edges_absorbed(self):
        hg = Hypergraph.from_dict({"big": ["X", "Y", "Z"], "small": ["X", "Y"]})
        residual, log = gyo_reduction(hg)
        assert len(residual) == 0
        # One edge absorbs the other (either direction is a valid ear
        # removal once lonely vertices are stripped).
        assert ("small", "big") in log or ("big", "small") in log

    def test_alpha_acyclic_triangle_with_cover(self):
        # A triangle plus a covering 3-edge is α-acyclic.
        hg = Hypergraph.from_dict(
            {
                "ab": ["A", "B"],
                "bc": ["B", "C"],
                "ca": ["C", "A"],
                "abc": ["A", "B", "C"],
            }
        )
        assert is_acyclic(hg)

    def test_triangle_without_cover_cyclic(self):
        hg = Hypergraph.from_dict(
            {"ab": ["A", "B"], "bc": ["B", "C"], "ca": ["C", "A"]}
        )
        assert not is_acyclic(hg)

    def test_paper_q5_hypergraph_is_cyclic(self):
        # Example 1 of the paper: H(Q5) is cyclic.
        hg = Hypergraph.from_dict(
            {
                "customer": ["CustKey", "NationKey"],
                "orders": ["OrdKey", "CustKey"],
                "lineitem": ["SuppKey", "OrdKey", "Price", "Disc"],
                "supplier": ["SuppKey", "NationKey"],
                "nation": ["Name", "NationKey", "RegionKey"],
                "region": ["RegionKey", "RName"],
            }
        )
        assert not is_acyclic(hg)


class TestComponents:
    def make(self):
        return Hypergraph.from_dict(
            {
                "a": ["X", "Y"],
                "b": ["Y", "Z"],
                "c": ["Z", "W"],
                "d": ["U", "V"],
            }
        )

    def test_vertex_components(self):
        hg = self.make()
        comps = vertex_connected_components(hg)
        assert sorted(len(c) for c in comps) == [2, 4]

    def test_vertex_components_with_exclusion(self):
        hg = self.make()
        comps = vertex_connected_components(hg, excluded_vertices={"Z"})
        assert sorted(len(c) for c in comps) == [1, 2, 2]

    def test_edge_components_modulo_separator(self):
        hg = self.make()
        comps = connected_components(hg, ["a", "b", "c", "d"], {"Z"})
        as_sets = sorted(tuple(sorted(c)) for c in comps)
        assert as_sets == [("a", "b"), ("c",), ("d",)]

    def test_fully_covered_edges_excluded(self):
        hg = self.make()
        comps = connected_components(hg, ["a", "b"], {"X", "Y", "Z"})
        assert comps == []

    def test_empty_separator_keeps_connectivity(self):
        hg = self.make()
        comps = connected_components(hg, ["a", "b", "c", "d"], set())
        assert sorted(len(c) for c in comps) == [1, 3]

    def test_component_frontier(self):
        hg = self.make()
        frontier = component_frontier(hg, ["a", "b"], {"Z", "W"})
        assert frontier == frozenset({"Z"})


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=1, max_value=12))
def test_lines_always_acyclic(n):
    assert is_acyclic(line_hypergraph(n))


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=3, max_value=12))
def test_cycles_never_acyclic(n):
    assert not is_acyclic(cycle_hypergraph(n))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_gyo_log_covers_all_edges_when_acyclic(n, seed):
    """For acyclic inputs, the removal log mentions every edge exactly once."""
    hg = line_hypergraph(n)
    residual, log = gyo_reduction(hg)
    assert len(residual) == 0
    removed = [name for name, _ in log]
    assert sorted(removed) == sorted(hg.edge_names)

"""Tests for IN lists and uncorrelated IN-subquery flattening."""

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.errors import QueryError, SqlSyntaxError
from repro.query import ast
from repro.query.parser import parse_sql
from repro.query.subqueries import flatten_subqueries, has_subqueries
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema

SCHEMA = {"t": ("a", "b"), "s": ("b", "c")}


@pytest.fixture()
def db():
    database = Database("subq")
    database.create_table(
        RelationSchema.of("t", {"a": AttributeType.INT, "b": AttributeType.INT}),
        [(1, 10), (2, 20), (3, 30), (4, 40)],
    )
    database.create_table(
        RelationSchema.of("s", {"b": AttributeType.INT, "c": AttributeType.INT}),
        [(10, 1), (30, 1), (50, 2)],
    )
    database.analyze()
    return database


class TestParsing:
    def test_in_list_of_literals(self):
        q = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)")
        predicate = q.predicates[0]
        assert isinstance(predicate, ast.InList)
        assert predicate.values == (1, 2, 3)
        assert not predicate.is_equijoin

    def test_in_list_of_strings(self):
        q = parse_sql("SELECT a FROM t WHERE b IN ('x', 'y')")
        assert q.predicates[0].values == ("x", "y")

    def test_in_subquery(self):
        q = parse_sql("SELECT a FROM t WHERE b IN (SELECT b FROM s WHERE c = 1)")
        predicate = q.predicates[0]
        assert isinstance(predicate, ast.InSubquery)
        assert predicate.subquery.tables[0].relation == "s"
        assert has_subqueries(q)

    def test_in_requires_constants(self):
        with pytest.raises(SqlSyntaxError, match="constant"):
            parse_sql("SELECT a FROM t WHERE a IN (b, c)")

    def test_bare_in_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE a IN b")

    def test_in_list_round_trips_to_sql(self):
        q = parse_sql("SELECT a FROM t WHERE a IN (1, 2)")
        again = parse_sql(q.to_sql())
        assert again.predicates[0].values == (1, 2)


class TestTranslation:
    def test_in_list_becomes_atom_filter(self):
        q = parse_sql("SELECT t.a FROM t WHERE t.b IN (10, 20)")
        tr = sql_to_conjunctive(q, SCHEMA)
        assert len(tr.atom_filters["t"]) == 1
        assert isinstance(tr.atom_filters["t"][0], ast.InList)

    def test_unflattened_subquery_rejected(self):
        q = parse_sql("SELECT t.a FROM t WHERE t.b IN (SELECT b FROM s)")
        with pytest.raises(QueryError, match="flatten"):
            sql_to_conjunctive(q, SCHEMA)


class TestFlattening:
    def test_flatten_replaces_with_values(self):
        q = parse_sql("SELECT t.a FROM t WHERE t.b IN (SELECT b FROM s)")
        flat = flatten_subqueries(q, lambda sq: [10, 30], SCHEMA)
        predicate = flat.predicates[0]
        assert isinstance(predicate, ast.InList)
        assert predicate.values == (10, 30)
        assert not has_subqueries(flat)

    def test_nested_subqueries_flatten_inner_first(self):
        q = parse_sql(
            "SELECT t.a FROM t WHERE t.b IN "
            "(SELECT b FROM s WHERE c IN (SELECT a FROM t))"
        )
        calls = []

        def runner(sq):
            calls.append(sq.tables[0].relation)
            return [1]

        flatten_subqueries(q, runner, SCHEMA)
        assert calls == ["t", "s"]  # innermost evaluated first

    def test_correlated_qualified_rejected(self):
        q = parse_sql(
            "SELECT t.a FROM t WHERE t.b IN (SELECT b FROM s WHERE s.c = t.a)"
        )
        with pytest.raises(QueryError, match="correlated"):
            flatten_subqueries(q, lambda sq: [], SCHEMA)

    def test_correlated_unqualified_rejected(self):
        q = parse_sql(
            "SELECT t.a FROM t WHERE t.b IN (SELECT b FROM s WHERE a = 1)"
        )
        with pytest.raises(QueryError, match="correlated"):
            flatten_subqueries(q, lambda sq: [], SCHEMA)

    def test_multi_column_subquery_rejected(self):
        q = parse_sql("SELECT t.a FROM t WHERE t.b IN (SELECT b, c FROM s)")
        with pytest.raises(QueryError, match="exactly one column"):
            flatten_subqueries(q, lambda sq: [], SCHEMA)

    def test_flat_query_passthrough(self):
        q = parse_sql("SELECT a FROM t WHERE a = 1")
        assert flatten_subqueries(q, lambda sq: [], SCHEMA) is q


class TestEndToEnd:
    def test_engine_in_list(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql("SELECT a FROM t WHERE a IN (1, 3, 9)")
        assert sorted(result.relation.tuples) == [(1,), (3,)]

    def test_engine_in_subquery(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT a FROM t WHERE b IN (SELECT b FROM s WHERE c = 1)"
        )
        assert sorted(result.relation.tuples) == [(1,), (3,)]

    def test_hybrid_optimizer_in_subquery(self, db):
        sql = "SELECT a FROM t WHERE b IN (SELECT b FROM s WHERE c = 1)"
        plan = HybridOptimizer(db, max_width=2).optimize(sql)
        result = plan.execute()
        assert sorted(result.relation.tuples) == [(1,), (3,)]

    def test_empty_subquery_result(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT a FROM t WHERE b IN (SELECT b FROM s WHERE c = 99)"
        )
        assert result.relation.tuples == []

    def test_views_render_in_lists(self, db):
        sql = "SELECT t.a, s.c FROM t, s WHERE t.b = s.b AND t.a IN (1, 2, 3)"
        plan = HybridOptimizer(db, max_width=2).optimize(sql)
        view_plan = plan.to_sql_views()
        script = view_plan.render()
        assert "IN (1, 2, 3)" in script
        # The view stack must execute and agree with the direct path.
        from repro.core.views import execute_view_plan

        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        direct = dbms.run_sql(sql)
        via_views = execute_view_plan(view_plan, dbms)
        assert direct.relation.same_content(via_views.relation)

    def test_exists_true_is_noop(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT a FROM t WHERE EXISTS (SELECT b FROM s WHERE c = 1)"
        )
        assert len(result.relation) == 4

    def test_exists_false_empties_answer(self, db):
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        result = dbms.run_sql(
            "SELECT a FROM t WHERE EXISTS (SELECT b FROM s WHERE c = 77)"
        )
        assert result.relation.tuples == []

    def test_exists_parses(self):
        q = parse_sql("SELECT a FROM t WHERE EXISTS (SELECT b FROM s)")
        assert isinstance(q.predicates[0], ast.ExistsSubquery)
        assert has_subqueries(q)

    def test_correlated_exists_rejected(self):
        q = parse_sql(
            "SELECT t.a FROM t WHERE EXISTS (SELECT b FROM s WHERE s.c = t.a)"
        )
        with pytest.raises(QueryError, match="correlated"):
            flatten_subqueries(q, lambda sq: [], SCHEMA)

    def test_coupled_engine_flattens_too(self, db):
        from repro.core.integration import install_structural_optimizer

        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        install_structural_optimizer(dbms, max_width=2)
        result = dbms.run_sql(
            "SELECT a FROM t WHERE b IN (SELECT b FROM s WHERE c = 1)"
        )
        assert sorted(result.relation.tuples) == [(1,), (3,)]

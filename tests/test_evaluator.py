"""Tests for Yannakakis and the q-hypertree evaluator.

The reference point throughout is the brute-force backtracking evaluator
in ``conftest.py``: every decomposition-based evaluator must compute
exactly the same (set-semantics) answers.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HypergraphError
from repro.metering import SpillModel, WorkMeter
from repro.query.builder import ConjunctiveQueryBuilder
from repro.core.detkdecomp import det_k_decomp
from repro.core.evaluator import (
    QHDEvaluator,
    atom_relations,
    evaluate_hd_classic,
    evaluate_qhd,
    yannakakis_acyclic,
    yannakakis_boolean,
)
from repro.core.qhd import assign_atoms, procedure_optimize, q_hypertree_decomp

from tests.conftest import brute_force_answer, random_database_for


def line_query(n, output=("V0",)):
    builder = ConjunctiveQueryBuilder("line")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{i + 1}")
    return builder.output(*output).build()


def chain_query(n, output=("V0", "V1")):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output(*output).build()


def relations_for(query, seed=0, rows=10, values=4):
    rng = random.Random(seed)
    db = random_database_for(query, rng, max_rows=rows, values=values)
    return atom_relations(query, db)


class TestYannakakisBoolean:
    def test_satisfiable_line(self):
        q = line_query(4, output=())
        rels = relations_for(q, seed=1)
        expected = len(brute_force_answer(q.with_output(["V0"]), rels)) > 0
        assert yannakakis_boolean(q, rels) == expected

    def test_unsatisfiable(self):
        q = line_query(2, output=())
        rels = relations_for(q, seed=1)
        # Make the middle variable never match.
        from repro.relational import Relation

        rels["p1"] = Relation(["V1", "V2"], [(99, 99)])
        assert not yannakakis_boolean(q, rels)

    def test_cyclic_raises(self):
        q = chain_query(4, output=())
        rels = relations_for(q)
        with pytest.raises(HypergraphError):
            yannakakis_boolean(q, rels)


class TestYannakakisFull:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_brute_force(self, seed):
        q = line_query(4, output=("V0", "V2", "V4"))
        rels = relations_for(q, seed=seed)
        expected = brute_force_answer(q, rels)
        got = yannakakis_acyclic(q, rels)
        assert got.same_content(expected)

    def test_work_is_bounded(self):
        # Yannakakis should never blow past input+output polynomial size.
        q = line_query(6, output=("V0",))
        rels = relations_for(q, seed=7, rows=30, values=3)
        meter = WorkMeter()
        yannakakis_acyclic(q, rels, meter=meter)
        total_input = sum(len(r) for r in rels.values())
        assert meter.total < 100 * total_input

    def test_empty_answer(self):
        q = line_query(3, output=("V0",))
        rels = relations_for(q, seed=2)
        from repro.relational import Relation

        rels["p1"] = Relation(["V1", "V2"], [])
        got = yannakakis_acyclic(q, rels)
        assert len(got) == 0


class TestQHDEvaluator:
    @pytest.mark.parametrize("seed", list(range(8)))
    def test_chain_matches_brute_force(self, seed):
        q = chain_query(5)
        rels = relations_for(q, seed=seed)
        tree = q_hypertree_decomp(q, 2)
        got = evaluate_qhd(tree, q, rels)
        expected = brute_force_answer(q, rels)
        assert got.same_content(expected)

    @pytest.mark.parametrize("seed", list(range(5)))
    def test_line_with_span_output(self, seed):
        q = line_query(5, output=("V0", "V5"))
        rels = relations_for(q, seed=seed)
        tree = q_hypertree_decomp(q, 2)
        got = evaluate_qhd(tree, q, rels)
        assert got.same_content(brute_force_answer(q, rels))

    def test_optimized_tree_same_answers(self):
        q = chain_query(6)
        rels = relations_for(q, seed=3, rows=15)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        plain = evaluate_qhd(tree.clone(), q, rels)
        procedure_optimize(tree)
        optimized = evaluate_qhd(tree, q, rels)
        assert plain.same_content(optimized)

    def test_optimize_saves_work(self):
        q = chain_query(8)
        rels = relations_for(q, seed=3, rows=60, values=6)
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        baseline = tree.clone()
        procedure_optimize(tree)
        m1, m2 = WorkMeter(), WorkMeter()
        evaluate_qhd(tree, q, rels, meter=m1)
        evaluate_qhd(baseline, q, rels, meter=m2)
        assert m1.total <= m2.total

    def test_spill_model_charges(self):
        q = chain_query(5)
        rels = relations_for(q, seed=0, rows=40, values=3)
        tree = q_hypertree_decomp(q, 2)
        meter = WorkMeter()
        evaluate_qhd(tree, q, rels, meter=meter, spill=SpillModel(1, 5.0))
        assert meter.by_category.get("spill", 0) > 0

    def test_output_ordering_matches_head(self):
        q = chain_query(4, output=("V1", "V0"))
        rels = relations_for(q, seed=5)
        tree = q_hypertree_decomp(q, 2)
        got = evaluate_qhd(tree, q, rels)
        assert got.attributes == ("V1", "V0")

    def test_trace_available(self):
        q = chain_query(4)
        rels = relations_for(q, seed=0)
        tree = q_hypertree_decomp(q, 2)
        evaluator = QHDEvaluator(tree, q, WorkMeter())
        evaluator.evaluate(rels)
        assert evaluator.trace()


class TestClassicHD:
    @pytest.mark.parametrize("seed", list(range(5)))
    def test_matches_brute_force(self, seed):
        q = chain_query(5)
        rels = relations_for(q, seed=seed)
        tree = q_hypertree_decomp(q, 2)
        got = evaluate_hd_classic(tree, q, rels)
        assert got.same_content(brute_force_answer(q, rels))

    def test_matches_qhd_evaluator(self):
        q = chain_query(6)
        rels = relations_for(q, seed=11, rows=20)
        tree = q_hypertree_decomp(q, 2)
        classic = evaluate_hd_classic(tree, q, rels)
        single_pass = evaluate_qhd(tree, q, rels)
        assert classic.same_content(single_pass)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    values=st.integers(min_value=2, max_value=5),
)
def test_property_qhd_equals_brute_force_on_chains(n, seed, values):
    """The crown-jewel property: for random chain data, the q-hypertree
    evaluator computes exactly the brute-force answers."""
    q = chain_query(n)
    rng = random.Random(seed)
    db = random_database_for(q, rng, max_rows=10, values=values)
    rels = atom_relations(q, db)
    tree = q_hypertree_decomp(q, 2)
    got = evaluate_qhd(tree, q, rels)
    assert got.same_content(brute_force_answer(q, rels))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_yannakakis_equals_brute_force_on_lines(n, seed):
    q = line_query(n, output=("V0", f"V{n}"))
    rng = random.Random(seed)
    db = random_database_for(q, rng, max_rows=10, values=4)
    rels = atom_relations(q, db)
    got = yannakakis_acyclic(q, rels)
    assert got.same_content(brute_force_answer(q, rels))

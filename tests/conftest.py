"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import faulthandler
import itertools
import os
import random
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Tuple

import pytest

# Allow running the tests without installing the package.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.query.conjunctive import Atom, ConjunctiveQuery, Constant
from repro.relational import AttributeType, Database, Relation, RelationSchema


# ---------------------------------------------------------------------------
# Per-test deadline (opt-in, dependency-free)
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _per_test_deadline():
    """Abort a hung test with a traceback after ``HDQO_TEST_DEADLINE`` s.

    CI sets the variable (the chaos job must never wedge a runner); local
    runs leave it unset and pay nothing.  ``faulthandler`` dumps every
    thread's stack and exits, so a deadlock diagnoses itself.
    """
    seconds = float(os.environ.get("HDQO_TEST_DEADLINE", "0") or 0)
    if seconds <= 0:
        yield
        return
    faulthandler.dump_traceback_later(seconds, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


# ---------------------------------------------------------------------------
# Dynamic lock-order witness (opt-in: HDQO_LOCKCHECK=1)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session", autouse=True)
def _lock_order_witness():
    """Fail the session if the lock witness saw an acquisition cycle.

    With ``HDQO_LOCKCHECK=1``, every lock built by
    :func:`repro.analysis.lockwitness.make_lock` reports to the global
    witness; any two locks ever taken in opposite orders anywhere in the
    suite raise :class:`~repro.errors.LockOrderViolation` here.
    """
    yield
    from repro.analysis.lockwitness import GLOBAL_WITNESS, lockcheck_enabled

    if lockcheck_enabled():
        GLOBAL_WITNESS.assert_clean()


# ---------------------------------------------------------------------------
# Brute-force reference evaluation (used to validate every evaluator)
# ---------------------------------------------------------------------------


def brute_force_answer(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> Relation:
    """All answers of a conjunctive query by naive backtracking join.

    ``relations`` maps atom name → a relation whose attributes are the
    atom's variables (the :func:`repro.engine.scans.atom_relations` shape).
    Output is the distinct projection onto the query head.
    """
    bindings: List[Dict[str, object]] = [{}]
    for atom in query.atoms:
        relation = relations[atom.name]
        new_bindings: List[Dict[str, object]] = []
        for binding in bindings:
            for row in relation.tuples:
                candidate = dict(binding)
                ok = True
                for variable, value in zip(relation.attributes, row):
                    if variable in candidate and candidate[variable] != value:
                        ok = False
                        break
                    candidate[variable] = value
                if ok:
                    new_bindings.append(candidate)
        bindings = new_bindings
        if not bindings:
            break
    seen = set()
    out_rows: List[Tuple[object, ...]] = []
    for binding in bindings:
        row = tuple(binding[v] for v in query.output)
        if row not in seen:
            seen.add(row)
            out_rows.append(row)
    return Relation(query.output, out_rows)


def random_database_for(
    query: ConjunctiveQuery,
    rng: random.Random,
    max_rows: int = 12,
    values: int = 4,
) -> Database:
    """A random database matching a conjunctive query's positional atoms."""
    db = Database("random")
    for atom in query.atoms:
        if atom.relation in db:
            continue
        arity = len(atom.terms)
        schema = RelationSchema.of(
            atom.relation,
            [(f"c{i}", AttributeType.INT) for i in range(arity)],
        )
        rows = [
            tuple(rng.randrange(values) for _ in range(arity))
            for _ in range(rng.randrange(1, max_rows + 1))
        ]
        db.create_table(schema, rows)
    return db


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_tpch():
    """A very small TPC-H database with statistics, shared by tests."""
    from repro.workloads.tpch import generate_tpch_database

    return generate_tpch_database(size_mb=50, seed=42, analyze=True)


@pytest.fixture()
def chain_db():
    """Four binary relations forming a cyclic chain, with statistics."""
    rng = random.Random(0)
    db = Database("chain4")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(8), rng.randrange(8)) for _ in range(40)]
        )
    db.analyze()
    return db


CHAIN_SQL = """
SELECT r0.a0, r2.a2 FROM r0, r1, r2, r3
WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
"""


@pytest.fixture()
def chain_sql():
    return CHAIN_SQL

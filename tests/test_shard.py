"""Shard subsystem: ring, wire codec, aggregation, router, front door.

The cheap layers (hash ring, error codec, snapshot/span/registry merges,
span-record validation) are tested in-process.  The expensive layer —
real worker processes behind a :class:`ShardRouter` — runs **once** in a
module-scoped fixture that drives a multi-template workload through both
the blocking router API and the asyncio front door, captures every
artifact (results, snapshots, merged trace, Prometheus text), drains,
and lets the assertions below pick the run apart.  The contract under
test is the PR's acceptance bar: a sharded cluster answers
byte-identically (rows *and* order) to one single-process service, with
per-shard plan-cache hit rates no worse than the baseline's.
"""

import asyncio
import random
from types import SimpleNamespace

import pytest

from repro.engine.dbms import COMMDB_PROFILE, DBMSResult, SimulatedDBMS
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    MemoryBudgetExceeded,
    QueryCancelled,
    ReproError,
    ServiceClosed,
    ServiceOverloaded,
    ShardError,
    SqlSyntaxError,
    WorkBudgetExceeded,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import validate_span_records
from repro.relational import AttributeType, Database, RelationSchema
from repro.service.server import QueryService
from repro.shard import (
    AsyncFrontDoor,
    ConsistentHashRing,
    ShardConfig,
    ShardRouter,
    decode_error,
    encode_error,
    merge_metric_snapshots,
    merge_registry_exports,
    merge_span_records,
    registry_export,
    render_prometheus,
    shard_cache_hit_rates,
)

from tests.conftest import CHAIN_SQL

SHARDS = 3

#: Four non-isomorphic templates over the chain schema — distinct
#: canonical fingerprints, so consistent hashing can spread them.
TEMPLATES = [
    CHAIN_SQL.strip() + " AND r0.a0 < {c}",
    CHAIN_SQL.strip() + " AND r1.a1 < {c}",
    "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {c}",
    "SELECT r2.a2, r3.a3 FROM r2, r3 WHERE r2.b2 = r3.a3 AND r2.a2 < {c}",
]

REPETITIONS = 6


def workload():
    """Round-robin over the templates, constants varying per repetition."""
    return [
        template.format(c=3 + (rep % 4))
        for rep in range(REPETITIONS)
        for template in TEMPLATES
    ]


# ---------------------------------------------------------------------------
# Consistent hash ring
# ---------------------------------------------------------------------------


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        keys = [f"fingerprint-{i}" for i in range(200)]
        first = ConsistentHashRing(4)
        second = ConsistentHashRing(4)
        assert [first.shard_for(k) for k in keys] == [
            second.shard_for(k) for k in keys
        ]

    def test_every_shard_owns_keys(self):
        keys = [f"template:{i}" for i in range(500)]
        counts = ConsistentHashRing(4).distribution(keys)
        assert set(counts) == {0, 1, 2, 3}
        assert all(count > 0 for count in counts.values())
        assert sum(counts.values()) == len(keys)

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_resize_moves_a_minority_of_keys(self):
        """The consistent-hashing property: growing 4 -> 5 shards must
        relocate roughly 1/5 of the keys, not rehash the world."""
        keys = [f"fingerprint-{i}" for i in range(1000)]
        small, large = ConsistentHashRing(4), ConsistentHashRing(5)
        moved = sum(
            1 for k in keys if small.shard_for(k) != large.shard_for(k)
        )
        assert 0 < moved < len(keys) // 2

    def test_rejects_degenerate_configs(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)
        with pytest.raises(ValueError):
            ConsistentHashRing(2, replicas=0)


# ---------------------------------------------------------------------------
# Error codec
# ---------------------------------------------------------------------------


class TestErrorCodec:
    @pytest.mark.parametrize(
        "original",
        [
            WorkBudgetExceeded(1000, 1234, phase="exec.join"),
            DeadlineExceeded(0.5, 0.7, site="exec.scan"),
            QueryCancelled("shard draining", site="shard.queue"),
            MemoryBudgetExceeded(
                "exec.join", rows=10, row_width=4, cells=40, budget_cells=30
            ),
            InjectedFault("decompose.search"),
            ServiceOverloaded(queued=64, capacity=64),
            SqlSyntaxError("unexpected token", position=17),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_round_trip_preserves_type_and_attributes(self, original):
        rebuilt = decode_error(*encode_error(original))
        assert type(rebuilt) is type(original)
        assert str(rebuilt) == str(original)
        for attr, value in vars(original).items():
            assert getattr(rebuilt, attr) == value

    def test_message_only_types_round_trip(self):
        rebuilt = decode_error(*encode_error(ServiceClosed("router closed")))
        assert type(rebuilt) is ServiceClosed
        assert str(rebuilt) == "router closed"

    def test_unknown_type_degrades_to_shard_error(self):
        rebuilt = decode_error("NotARealError", "boom", {})
        assert isinstance(rebuilt, ShardError)
        assert rebuilt.original_type == "NotARealError"
        assert "boom" in str(rebuilt)

    def test_non_error_attribute_never_leaks_arbitrary_types(self):
        """Only ReproError subclasses reconstruct; e.g. a name that
        resolves to a non-exception in the errors module degrades."""
        rebuilt = decode_error("Dict", "boom", {})
        assert isinstance(rebuilt, ShardError)


# ---------------------------------------------------------------------------
# Aggregation: snapshots, spans, registries
# ---------------------------------------------------------------------------


class TestMergeMetricSnapshots:
    def test_counters_sum_and_derived_fields_recompute(self):
        left = {
            "queries": {"submitted": 3, "finished": 3},
            "latency_seconds": {
                "count": 2, "total": 1.0, "mean": 0.5,
                "min": 0.25, "max": 0.75,
            },
            "cache": {"hits": 3, "misses": 1, "hit_rate": 0.75},
        }
        right = {
            "queries": {"submitted": 5, "finished": 4},
            "latency_seconds": {
                "count": 0, "total": 0.0, "mean": 0.0,
                "min": 0.0, "max": 0.0,  # count == 0: placeholders
            },
            "cache": {"hits": 1, "misses": 3, "hit_rate": 0.25},
        }
        merged = merge_metric_snapshots([left, right])
        assert merged["queries"] == {"submitted": 8, "finished": 7}
        latency = merged["latency_seconds"]
        assert latency["count"] == 2
        assert latency["mean"] == 0.5  # recomputed, not summed
        # The empty shard's 0.0 placeholders must not win the extrema.
        assert latency["min"] == 0.25
        assert latency["max"] == 0.75
        assert merged["cache"]["hit_rate"] == 0.5  # 4 hits / 8 lookups

    def test_empty_input(self):
        assert merge_metric_snapshots([]) == {}
        assert merge_metric_snapshots([{}, {}]) == {}


class TestMergeSpanRecords:
    def spans(self, n, parented=True):
        records = []
        for i in range(n):
            records.append({
                "span_id": i,
                "parent_id": (i - 1 if parented and i else None),
                "name": f"op{i}",
                "start": 0.1 * i,
                "duration": 0.01,
                "work_units": 1,
                "tags": {"k": 2},
            })
        return records

    def test_ids_namespaced_and_shard_tagged(self):
        per_shard = {0: self.spans(3), 2: self.spans(2)}
        merged = merge_span_records(per_shard, stride=1000)
        ids = [r["span_id"] for r in merged]
        assert ids == [1000, 1001, 1002, 3000, 3001]
        assert merged[1]["parent_id"] == 1000
        assert merged[4]["parent_id"] == 3000
        assert [r["tags"]["shard"] for r in merged] == [0, 0, 0, 2, 2]
        # Original tags survive alongside the added shard tag.
        assert merged[0]["tags"]["k"] == 2
        # The merged timeline passes the cross-process contract.
        assert validate_span_records(merged, require_shard_tag=True) == []

    def test_inputs_not_mutated(self):
        records = self.spans(2)
        merge_span_records({1: records})
        assert records[0]["span_id"] == 0
        assert "shard" not in records[0]["tags"]

    def test_span_id_overflowing_stride_raises(self):
        with pytest.raises(ValueError):
            merge_span_records({0: [{"span_id": 1000, "tags": {}}]},
                               stride=1000)


class TestValidateSpanRecords:
    def record(self, span_id, **overrides):
        base = {
            "span_id": span_id, "parent_id": None, "name": "op",
            "start": 0.0, "duration": 0.01, "work_units": 0,
            "tags": {"shard": 0},
        }
        base.update(overrides)
        return base

    def test_clean_records_pass(self):
        records = [self.record(1), self.record(2, parent_id=1)]
        assert validate_span_records(records, require_shard_tag=True) == []

    def test_duplicate_ids_detected(self):
        problems = validate_span_records([self.record(1), self.record(1)])
        assert any("duplicate" in p for p in problems)

    def test_dangling_parent_detected_only_when_nothing_dropped(self):
        records = [self.record(1, parent_id=99)]
        assert any(
            "unknown parent" in p for p in validate_span_records(records)
        )
        # With drops reported, the parent may legitimately be gone.
        assert validate_span_records(records, dropped=1) == []

    def test_missing_or_bool_shard_tag_detected(self):
        records = [self.record(1, tags={})]
        assert validate_span_records(records) == []  # tag not demanded
        problems = validate_span_records(records, require_shard_tag=True)
        assert any("'shard' tag" in p for p in problems)
        sneaky = [self.record(1, tags={"shard": True})]
        assert validate_span_records(sneaky, require_shard_tag=True)

    def test_open_spans_and_negative_durations_detected(self):
        assert validate_span_records([], open_count=2)
        problems = validate_span_records([self.record(1, duration=-0.5)])
        assert any("negative" in p for p in problems)


class TestRegistryAggregation:
    def populated_registry(self, scale):
        registry = MetricsRegistry()
        counter = registry.counter("rpc_total", help="requests")
        counter.inc(3 * scale)
        gauge = registry.gauge("inflight", help="current")
        gauge.set(2 * scale)
        histogram = registry.histogram(
            "latency", buckets=(0.1, 1.0), help="seconds"
        )
        histogram.observe(0.05 * scale)
        return registry

    def test_single_export_renders_like_the_live_registry(self):
        registry = self.populated_registry(1)
        assert (
            render_prometheus(registry_export(registry))
            == registry.render_text()
        )

    def test_merge_sums_counters_and_histograms(self):
        exports = [
            registry_export(self.populated_registry(1)),
            registry_export(self.populated_registry(2)),
        ]
        merged = merge_registry_exports(exports)
        assert merged["rpc_total"]["value"] == 9
        assert merged["inflight"]["value"] == 6
        histogram = merged["latency"]["value"]
        assert histogram["count"] == 2
        assert histogram["min"] == 0.05
        assert histogram["max"] == 0.1
        text = render_prometheus(merged)
        assert "rpc_total 9" in text
        assert 'latency_bucket{le="+Inf"} 2' in text

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError):
            merge_registry_exports([
                {"m": {"kind": "counter", "help": "", "value": 1}},
                {"m": {"kind": "gauge", "help": "", "value": 1}},
            ])


class TestShardCacheHitRates:
    def test_per_query_rate_from_planning_counters(self):
        rates = shard_cache_hit_rates({
            0: {"planning": {"built": 2, "cache_hits": 14}},
            1: {"planning": {"built": 0, "cache_hits": 0}},
        })
        assert rates == {0: 0.875, 1: None}


# ---------------------------------------------------------------------------
# The real cluster (one spawn per module)
# ---------------------------------------------------------------------------


def _make_chain_db():
    rng = random.Random(0)
    db = Database("chain4")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(8), rng.randrange(8)) for _ in range(40)]
        )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def cluster():
    """One sharded run, fully captured: results, snapshots, trace, exits."""
    database = _make_chain_db()
    queries = workload()

    baseline_service = QueryService(
        SimulatedDBMS(database, COMMDB_PROFILE),
        max_width=2,
        workers=4,
        queue_capacity=64,
        cache_capacity=64,
    )
    try:
        baseline_results = baseline_service.run_all(queries)
        baseline_snapshot = baseline_service.snapshot()
    finally:
        baseline_service.close()

    config = ShardConfig(
        database=database,
        max_width=2,
        workers=2,
        queue_capacity=32,
        cache_capacity=64,
        trace=True,
    )
    router = ShardRouter(config, shards=SHARDS)
    routes = {sql: router.route(sql) for sql in queries}
    routes_again = {sql: router.route(sql) for sql in queries}
    sharded_results = router.run_all(queries)

    async def front_door_pass():
        async with AsyncFrontDoor(router, queue_depth=8) as door:
            results = await door.run_all(queries)
            return results, door.snapshot()

    frontdoor_results, frontdoor_snapshot = asyncio.run(front_door_pass())
    live_snapshot = router.snapshot()
    prometheus_text = router.render_prometheus()
    latencies = router.client_latencies()
    drained = router.drain(grace_seconds=30.0)
    yield SimpleNamespace(
        database=database,
        queries=queries,
        baseline_results=baseline_results,
        baseline_snapshot=baseline_snapshot,
        router=router,
        routes=routes,
        routes_again=routes_again,
        sharded_results=sharded_results,
        frontdoor_results=frontdoor_results,
        frontdoor_snapshot=frontdoor_snapshot,
        live_snapshot=live_snapshot,
        prometheus_text=prometheus_text,
        latencies=latencies,
        drained=drained,
    )


class TestClusterParity:
    def test_sharded_answers_are_byte_identical(self, cluster):
        assert len(cluster.sharded_results) == len(cluster.baseline_results)
        for base, shard in zip(
            cluster.baseline_results, cluster.sharded_results
        ):
            assert isinstance(shard, DBMSResult)
            assert shard.finished
            # Rows AND order — the acceptance bar, not set equality.
            assert shard.relation.attributes == base.relation.attributes
            assert shard.relation.tuples == base.relation.tuples

    def test_front_door_answers_match_router_answers(self, cluster):
        for direct, doored in zip(
            cluster.sharded_results, cluster.frontdoor_results
        ):
            assert doored.relation.tuples == direct.relation.tuples

    def test_deterministic_work_survives_the_boundary(self, cluster):
        for base, shard in zip(
            cluster.baseline_results, cluster.sharded_results
        ):
            assert shard.work == base.work


class TestClusterRouting:
    def test_routing_is_deterministic(self, cluster):
        assert cluster.routes == cluster.routes_again

    def test_isomorphic_queries_share_a_shard(self, cluster):
        by_template = {}
        for template in TEMPLATES:
            instances = [
                sql
                for sql in cluster.queries
                if sql.startswith(template.split("{c}")[0])
            ]
            shards = {cluster.routes[sql] for sql in instances}
            assert len(shards) == 1, template
            by_template[template] = shards.pop()
        # ... and the workload genuinely exercised more than one shard.
        assert len(set(by_template.values())) > 1

    def test_routing_cache_served_the_repeats(self, cluster):
        routing = cluster.live_snapshot["router"]["routing_cache"]
        assert routing["misses"] <= len(TEMPLATES)
        assert routing["hits"] > 0


class TestClusterObservability:
    def test_merged_counters_cover_every_query(self, cluster):
        # 3 passes over the workload: router.run_all, front door, and the
        # baseline ran separately (not merged here).
        merged = cluster.live_snapshot["merged"]
        expected = 2 * len(cluster.queries)
        assert merged["queries"]["submitted"] == expected
        assert merged["queries"]["finished"] == expected
        per_shard = cluster.live_snapshot["shards"]
        assert sum(
            s["queries"]["submitted"] for s in per_shard.values()
        ) == expected

    def test_per_shard_hit_rate_no_worse_than_baseline(self, cluster):
        planning = cluster.baseline_snapshot["planning"]
        baseline_rate = planning["cache_hits"] / (
            planning["cache_hits"] + planning["built"]
        )
        rates = [
            rate
            for rate in cluster.live_snapshot["cache_hit_rates"].values()
            if rate is not None
        ]
        assert rates
        assert min(rates) >= round(baseline_rate, 4)

    def test_prometheus_exposition_is_cluster_wide(self, cluster):
        text = cluster.prometheus_text
        expected = 2 * len(cluster.queries)
        assert f"service_queries_submitted_total {expected}" in text
        assert "# TYPE service_queries_submitted_total counter" in text

    def test_client_latencies_recorded_per_query(self, cluster):
        assert len(cluster.latencies) == 2 * len(cluster.queries)
        assert all(latency >= 0 for latency in cluster.latencies)

    def test_front_door_saw_no_expiries_or_leftovers(self, cluster):
        snapshot = cluster.frontdoor_snapshot
        assert snapshot["expired_in_queue"] == 0
        assert sum(
            view["enqueued"] for view in snapshot["per_shard"].values()
        ) == len(cluster.queries)


class TestClusterDrain:
    def test_drain_was_clean_and_is_idempotent(self, cluster):
        assert cluster.drained is True
        assert cluster.router.drain() is True  # idempotent
        exits = cluster.router.worker_exits()
        assert set(exits) == set(range(SHARDS))
        assert all(exit_.drained for exit_ in exits.values())
        assert cluster.router.lock_violations() == {}

    def test_submit_after_drain_is_refused(self, cluster):
        with pytest.raises(ServiceClosed):
            cluster.router.submit(cluster.queries[0])

    def test_merged_trace_passes_cross_process_validation(self, cluster):
        records = cluster.router.span_records()
        assert records  # tracing was on in every worker
        problems = validate_span_records(
            records,
            dropped=cluster.router.spans_dropped(),
            open_count=cluster.router.open_spans(),
            require_shard_tag=True,
        )
        assert problems == []
        shards_seen = {record["tags"]["shard"] for record in records}
        assert shards_seen == set(range(SHARDS))
        assert cluster.router.open_spans() == 0

    def test_final_snapshot_merges_worker_exits(self, cluster):
        final = cluster.router.final_snapshot()
        assert final["unresponsive"] == []
        assert final["merged"]["queries"]["submitted"] == 2 * len(
            cluster.queries
        )


# ---------------------------------------------------------------------------
# Front-door semantics against a stub router (deterministic, no processes)
# ---------------------------------------------------------------------------


class _StubRouter:
    """Just enough router surface for front-door unit tests."""

    def __init__(self, shards=1, max_inflight_per_shard=1):
        self.shards = shards
        self.max_inflight_per_shard = max_inflight_per_shard
        self.submitted = []
        self.futures = []
        self.fail_with = None

    def route(self, sql):
        return 0

    def submit(self, sql, work_budget=None, deadline_seconds=None):
        if self.fail_with is not None:
            raise self.fail_with
        from concurrent.futures import Future

        future = Future()
        self.submitted.append((sql, work_budget, deadline_seconds))
        self.futures.append(future)
        return future


class TestFrontDoorSemantics:
    def test_submit_nowait_rejects_when_the_queue_is_full(self):
        async def scenario():
            router = _StubRouter(max_inflight_per_shard=1)
            async with AsyncFrontDoor(router, queue_depth=1) as door:
                # q1 occupies the router slot (its future never resolves
                # here), q2 occupies the dispatcher awaiting the
                # semaphore, q3 fills the queue; q4 must bounce.
                tasks = [
                    asyncio.create_task(door.submit(f"q{i}"))
                    for i in range(3)
                ]
                await asyncio.sleep(0.05)  # let the dispatcher settle
                with pytest.raises(ServiceOverloaded):
                    await door.submit_nowait("q3")
                for future in router.futures:
                    future.set_result("done")
                for task in tasks:
                    task.cancel()
            return router

        router = asyncio.run(scenario())
        assert len(router.submitted) == 1  # only q0 reached the router

    def test_deadline_expires_while_queued(self):
        async def scenario():
            router = _StubRouter()
            async with AsyncFrontDoor(router, queue_depth=4) as door:
                blocker = asyncio.create_task(door.submit("block"))
                await asyncio.sleep(0.05)
                # The only router slot is held, so this waits in the
                # dispatcher past its entire (tiny) deadline.
                doomed = asyncio.create_task(
                    door.submit("late", deadline_seconds=0.01)
                )
                await asyncio.sleep(0.1)
                router.futures[0].set_result("done")
                assert await blocker == "done"
                with pytest.raises(DeadlineExceeded) as err:
                    await doomed
                assert err.value.site == "shard.frontdoor"
                return door.snapshot()

        snapshot = asyncio.run(scenario())
        assert snapshot["expired_in_queue"] == 1

    def test_expired_items_drain_without_consuming_the_slot(self):
        """Submissions that expire *while queued* are rejected at
        dequeue, before the semaphore acquire: they neither strand a
        dispatch slot nor linger in the bounded queue."""

        async def scenario():
            router = _StubRouter(max_inflight_per_shard=1)
            async with AsyncFrontDoor(router, queue_depth=8) as door:
                blocker = asyncio.create_task(door.submit("block"))
                await asyncio.sleep(0.05)  # blocker holds the only slot
                doomed = [
                    asyncio.create_task(
                        door.submit(f"late{i}", deadline_seconds=0.01)
                    )
                    for i in range(3)
                ]
                await asyncio.sleep(0.1)  # all three expire while queued
                router.futures[0].set_result("done")
                assert await blocker == "done"
                for task in doomed:
                    with pytest.raises(DeadlineExceeded):
                        await task
                # The slot came back: a fresh submission dispatches.
                fresh = asyncio.create_task(door.submit("fresh"))
                await asyncio.sleep(0.05)
                router.futures[-1].set_result("done")
                assert await fresh == "done"
                return door.snapshot(), [s for s, _, _ in router.submitted]

        snapshot, submitted = asyncio.run(scenario())
        assert snapshot["expired_in_queue"] == 3
        assert submitted == ["block", "fresh"]  # the doomed never dispatch
        assert all(
            view["queued"] == 0 for view in snapshot["per_shard"].values()
        )

    def test_abandoned_submission_skipped_at_dequeue(self):
        """A caller that gave up while queued is dropped at dequeue
        without taking (or leaking) a semaphore slot."""

        async def scenario():
            router = _StubRouter(max_inflight_per_shard=1)
            async with AsyncFrontDoor(router, queue_depth=8) as door:
                blocker = asyncio.create_task(door.submit("block"))
                await asyncio.sleep(0.05)
                abandoned = [
                    asyncio.create_task(door.submit(f"gone{i}"))
                    for i in range(2)
                ]
                await asyncio.sleep(0.05)
                for task in abandoned:
                    task.cancel()
                await asyncio.sleep(0.05)
                router.futures[0].set_result("done")
                assert await blocker == "done"
                fresh = asyncio.create_task(door.submit("fresh"))
                await asyncio.sleep(0.05)
                router.futures[-1].set_result("done")
                assert await fresh == "done"
                for task in abandoned:
                    with pytest.raises(asyncio.CancelledError):
                        await task
                return [sql for sql, _, _ in router.submitted]

        submitted = asyncio.run(scenario())
        assert submitted == ["block", "fresh"]

    def test_router_side_errors_surface_through_submit(self):
        async def scenario():
            router = _StubRouter()
            router.fail_with = ShardError("shard 0 worker is dead",
                                          shard_id=0)
            async with AsyncFrontDoor(router) as door:
                with pytest.raises(ShardError):
                    await door.submit("q")

        asyncio.run(scenario())

    def test_remaining_deadline_is_decremented_by_queue_wait(self):
        async def scenario():
            router = _StubRouter(max_inflight_per_shard=2)
            async with AsyncFrontDoor(router) as door:
                task = asyncio.create_task(
                    door.submit("q", deadline_seconds=30.0)
                )
                await asyncio.sleep(0.05)
                router.futures[0].set_result("done")
                await task
            return router.submitted[0][2]

        forwarded = asyncio.run(scenario())
        assert forwarded is not None
        assert 0 < forwarded <= 30.0

    def test_use_before_enter_is_an_error(self):
        door = AsyncFrontDoor(_StubRouter())

        async def scenario():
            with pytest.raises(RuntimeError):
                await door.submit("q")

        asyncio.run(scenario())

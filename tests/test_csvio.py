"""Tests for CSV/JSON relation and database I/O."""

import pytest

from repro.errors import SchemaError
from repro.relational import AttributeType, Database, Relation, RelationSchema
from repro.relational.csvio import (
    database_from_json,
    database_to_json,
    export_database_csv,
    load_database_csv,
    read_relation_csv,
    write_relation_csv,
)


@pytest.fixture()
def db():
    database = Database("io")
    database.create_table(
        RelationSchema.of(
            "t",
            {
                "a": AttributeType.INT,
                "b": AttributeType.FLOAT,
                "c": AttributeType.STRING,
                "d": AttributeType.DATE,
            },
            key=["a"],
        ),
        [(1, 2.5, "x", "1994-01-01"), (2, 3.5, "y", "1995-06-30")],
    )
    return database


class TestRelationCsv:
    def test_round_trip_with_schema(self, db, tmp_path):
        path = tmp_path / "t.csv"
        write_relation_csv(db.table("t"), path)
        schema = db.schema.relation("t")
        loaded = read_relation_csv(path, schema)
        assert loaded.tuples == db.table("t").tuples

    def test_read_without_schema_keeps_strings(self, db, tmp_path):
        path = tmp_path / "t.csv"
        write_relation_csv(db.table("t"), path)
        loaded = read_relation_csv(path)
        assert loaded.tuples[0][0] == "1"

    def test_header_mismatch_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(SchemaError, match="header"):
            read_relation_csv(path, db.schema.relation("t"))

    def test_bad_int_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c,d\nnope,1.0,x,1994-01-01\n")
        with pytest.raises(SchemaError, match="INT"):
            read_relation_csv(path, db.schema.relation("t"))

    def test_arity_mismatch_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c,d\n1,1.0,x\n")
        with pytest.raises(SchemaError, match="arity"):
            read_relation_csv(path, db.schema.relation("t"))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_relation_csv(path)


class TestDatabaseCsv:
    def test_export_and_load(self, db, tmp_path):
        export_database_csv(db, tmp_path)
        loaded = load_database_csv(db.schema, tmp_path, analyze=True)
        assert loaded.table("t").tuples == db.table("t").tuples
        assert loaded.has_statistics()

    def test_missing_file_rejected(self, db, tmp_path):
        with pytest.raises(SchemaError, match="missing CSV"):
            load_database_csv(db.schema, tmp_path)


class TestJson:
    def test_round_trip(self, db):
        text = database_to_json(db)
        loaded = database_from_json(text)
        assert loaded.table("t").tuples == db.table("t").tuples
        assert loaded.schema.relation("t").key == ("a",)
        assert loaded.schema.relation("t").type_of("b") is AttributeType.FLOAT

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError):
            database_from_json("{nope")

    def test_analyze_on_load(self, db):
        loaded = database_from_json(database_to_json(db), analyze=True)
        assert loaded.has_statistics()

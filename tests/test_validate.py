"""Tests for the decomposition diagnostics validator."""

import pytest

from repro.hypergraph import Hypergraph
from repro.query.builder import ConjunctiveQueryBuilder
from repro.core.hypertree import Hypertree, make_node
from repro.core.qhd import q_hypertree_decomp
from repro.core.validate import validate_decomposition


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output("V0").build()


@pytest.fixture()
def triangle():
    return Hypergraph.from_dict(
        {"ab": ["A", "B"], "bc": ["B", "C"], "ca": ["C", "A"]}
    )


class TestValidDecompositions:
    def test_qhd_output_is_clean(self):
        q = chain_query(6)
        tree = q_hypertree_decomp(q, 2)
        report = validate_decomposition(tree, q)
        assert report.ok, report.render()
        assert "no violations" in report.render()

    def test_hd_conditions_hold_before_optimize(self):
        q = chain_query(6)
        tree = q_hypertree_decomp(q, 2, optimize=False)
        report = validate_decomposition(tree, q, require_hd_conditions=True)
        # Atom assignment may append atoms, but χ ⊆ var(λ) still holds
        # since assignments are covered by χ.
        assert not report.by_condition("chi-subset-lambda")


class TestViolations:
    def test_uncovered_edge(self, triangle):
        tree = Hypertree(make_node(["A", "B"], ["ab"]), triangle)
        report = validate_decomposition(tree)
        assert len(report.by_condition("edge-coverage")) == 2
        assert not report.ok

    def test_disconnected_variable(self, triangle):
        grandchild = make_node(["A", "C"], ["ca"])
        child = make_node(["B", "C"], ["bc"], children=[grandchild])
        root = make_node(["A", "B"], ["ab"], children=[child])
        report = validate_decomposition(Hypertree(root, triangle))
        assert report.by_condition("connectedness")

    def test_chi_not_in_lambda_flagged_only_in_strict_mode(self, triangle):
        child = make_node(["B", "C"], ["bc"])
        root = make_node(["A", "B", "C"], ["ab"], children=[child])
        tree = Hypertree(root, triangle)
        assert not validate_decomposition(tree).by_condition("chi-subset-lambda")
        strict = validate_decomposition(tree, require_hd_conditions=True)
        assert strict.by_condition("chi-subset-lambda")

    def test_special_descendant_violation(self, triangle):
        child = make_node(["B", "C"], ["bc"])
        root = make_node(["A", "B"], ["ab", "ca"], children=[child])
        report = validate_decomposition(
            Hypertree(root, triangle), require_hd_conditions=True
        )
        assert report.by_condition("special-descendant")

    def test_output_cover_violation(self):
        q = chain_query(4)
        tree = q_hypertree_decomp(q, 2)
        # Pretend the query output were a variable the root lacks.
        q_bad = q.with_output(["V2"]) if "V2" not in tree.root.chi else q.with_output(["V3"])
        report = validate_decomposition(tree, q_bad)
        # Either the root covers it anyway (fine) or we get a finding.
        if not report.ok:
            assert report.by_condition("output-cover")

    def test_atom_assignment_violation(self, triangle):
        q = (
            ConjunctiveQueryBuilder("t")
            .atom("ab", "rab", "A", "B")
            .atom("bc", "rbc", "B", "C")
            .atom("ca", "rca", "C", "A")
            .output("A")
            .build()
        )
        child = make_node(["B", "C"], ["bc"])
        root = make_node(["A", "B", "C"], ["ab"], children=[child])
        report = validate_decomposition(Hypertree(root, triangle), q)
        assert report.by_condition("atom-assignment")

    def test_guard_integrity(self, triangle):
        child = make_node(["B", "C"], ["bc"])
        other = make_node(["C", "A"], ["ca"])
        root = make_node(["A", "B"], ["ab"], children=[child])
        root.guards["ab"] = other  # not a child + atom still in λ
        report = validate_decomposition(Hypertree(root, triangle))
        assert len(report.by_condition("guard-integrity")) == 2

    def test_render_lists_conditions(self, triangle):
        tree = Hypertree(make_node(["A", "B"], ["ab"]), triangle)
        text = validate_decomposition(tree).render()
        assert "edge-coverage" in text

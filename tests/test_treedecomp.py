"""Tests for min-fill tree decompositions, cross-checked with networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    line_hypergraph,
)
from repro.hypergraph.algorithms import primal_graph
from repro.hypergraph.treedecomp import (
    structural_summary,
    tree_decomposition_min_fill,
    treewidth_min_fill,
)


def check_valid(hg):
    td = tree_decomposition_min_fill(hg)
    assert td.is_valid(primal_graph(hg)), "invalid tree decomposition"
    return td


class TestValidity:
    def test_line(self):
        td = check_valid(line_hypergraph(6))
        assert td.width >= 1

    def test_cycle(self):
        td = check_valid(cycle_hypergraph(6, private=0))
        assert td.width == 2  # cycles have treewidth 2

    def test_clique(self):
        td = check_valid(clique_hypergraph(5))
        assert td.width == 4  # K5 treewidth = 4

    def test_grid(self):
        td = check_valid(grid_hypergraph(3, 3))
        assert td.width >= 3  # 3×3 grid treewidth = 3

    def test_disconnected(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"], "b": ["U", "V"]})
        check_valid(hg)

    def test_single_vertex(self):
        hg = Hypergraph.from_dict({"a": ["X"]})
        td = check_valid(hg)
        assert td.width == 0

    def test_empty_rejected(self):
        with pytest.raises(HypergraphError):
            tree_decomposition_min_fill(Hypergraph())


class TestWidthAgainstNetworkx:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: line_hypergraph(7),
            lambda: cycle_hypergraph(7, private=0),
            lambda: clique_hypergraph(6),
            lambda: grid_hypergraph(3, 4),
        ],
    )
    def test_matches_networkx_minfill(self, maker):
        from networkx.algorithms.approximation import treewidth_min_fill_in

        hg = maker()
        graph = nx.Graph()
        graph.add_nodes_from(hg.vertices)
        for v, neighbours in primal_graph(hg).items():
            graph.add_edges_from((v, u) for u in neighbours)
        nx_width, _ = treewidth_min_fill_in(graph)
        ours = treewidth_min_fill(hg)
        # Both are min-fill heuristics; tie-breaking may differ by 1.
        assert abs(ours - nx_width) <= 1

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        p=st.floats(min_value=0.2, max_value=0.8),
        seed=st.integers(min_value=0, max_value=5000),
    )
    def test_random_graphs_valid_and_bounded(self, n, p, seed):
        graph = nx.gnp_random_graph(n, p, seed=seed)
        edges = {
            f"e{i}": [f"v{u}", f"v{w}"]
            for i, (u, w) in enumerate(graph.edges)
        }
        if not edges:
            return
        hg = Hypergraph.from_dict(edges)
        td = check_valid(hg)
        assert td.width <= len(hg.vertices) - 1


class TestMotivatingGap:
    def test_high_arity_atom_cheap_for_hypertree_width(self):
        # One 6-ary atom: primal graph is K6 (treewidth 5) but hw = 1.
        from repro.core.detkdecomp import hypertree_width

        hg = Hypergraph.from_dict({"wide": [f"X{i}" for i in range(6)]})
        assert hypertree_width(hg) == 1
        assert treewidth_min_fill(hg) == 5

    def test_structural_summary(self):
        summary = structural_summary(cycle_hypergraph(6, private=0))
        assert summary["acyclic"] is False
        assert summary["hypertree_width"] == 2
        assert summary["treewidth_min_fill"] == 2
        assert summary["biconnected_width"] == 6
        assert summary["edges"] == 6

    def test_summary_on_acyclic(self):
        summary = structural_summary(line_hypergraph(4))
        assert summary["acyclic"] is True
        assert summary["hypertree_width"] == 1

"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.harness import ExperimentResult, RunRecord
from repro.bench.plotting import render_ascii_chart


def record(system, point, work, finished=True):
    return RunRecord(
        system=system,
        point=point,
        work=work,
        simulated_seconds=work * 1e-6,
        elapsed_seconds=0.0,
        finished=finished,
        answer_rows=1,
    )


@pytest.fixture()
def result():
    r = ExperimentResult("x", "Chart test")
    for point, (a, b) in enumerate([(10, 100), (20, 1000), (40, 10000)], start=2):
        r.add(record("alpha", point, a))
        r.add(record("beta", point, b))
    return r


class TestChart:
    def test_contains_title_and_legend(self, result):
        text = render_ascii_chart(result)
        assert "Chart test" in text
        assert "o=alpha" in text
        assert "x=beta" in text

    def test_monotone_series_rises(self, result):
        text = render_ascii_chart(result, height=8)
        chart_rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        # beta's marker must appear above alpha's in the top rows.
        top_half = "".join(chart_rows[: len(chart_rows) // 2])
        assert "x" in top_half

    def test_dnf_pinned_to_top(self, result):
        result.add(record("alpha", 5, 0, finished=False))
        result.add(record("beta", 5, 99999))
        text = render_ascii_chart(result)
        assert "!" in text

    def test_linear_scale(self, result):
        text = render_ascii_chart(result, log_scale=False)
        assert "scale" in text

    def test_empty_result(self):
        empty = ExperimentResult("x", "t")
        assert render_ascii_chart(empty) == "(no data)"

    def test_no_finished_runs(self):
        r = ExperimentResult("x", "t")
        r.add(record("a", 1, 0, finished=False))
        assert render_ascii_chart(r) == "(no finished runs)"

    def test_overlap_marker(self):
        r = ExperimentResult("x", "t")
        r.add(record("a", 1, 100))
        r.add(record("b", 1, 100))
        text = render_ascii_chart(r, height=5)
        assert "•" in text

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig10", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out


class TestDatabaseIndexIntegration:
    def test_create_index_via_database(self):
        from repro.relational import AttributeType, Database, RelationSchema

        db = Database()
        db.create_table(
            RelationSchema.of("t", {"a": AttributeType.INT}), [(1,), (2,)]
        )
        index = db.create_index("t", ("a",))
        assert index.contains((1,))
        assert db.indexes.find("t", ("a",)) is index

"""Tests for the conjunctive-query model."""

import pytest

from repro.errors import QueryError
from repro.query.conjunctive import Atom, ConjunctiveQuery, Constant


class TestAtom:
    def test_variables_exclude_constants(self):
        atom = Atom("a", "r", ("X", Constant(5), "Y", "X"))
        assert atom.variables == frozenset({"X", "Y"})
        assert atom.arity == 4

    def test_variable_positions(self):
        atom = Atom("a", "r", ("X", "Y", "X"))
        assert atom.variable_positions() == {"X": [0, 2], "Y": [1]}

    def test_validation(self):
        with pytest.raises(QueryError):
            Atom("", "r", ("X",))
        with pytest.raises(QueryError):
            Atom("a", "", ("X",))

    def test_str_forms(self):
        assert str(Atom("r", "r", ("X",))) == "r(X)"
        assert str(Atom("a1", "r", ("X",))) == "a1:r(X)"


class TestConjunctiveQuery:
    def make(self):
        return ConjunctiveQuery(
            [
                Atom("a", "r1", ("X", "Y")),
                Atom("b", "r2", ("Y", "Z")),
            ],
            output=["X", "Z"],
            name="Q",
        )

    def test_variables(self):
        q = self.make()
        assert q.variables == frozenset({"X", "Y", "Z"})
        assert q.output_variables == frozenset({"X", "Z"})
        assert not q.is_boolean

    def test_boolean_query(self):
        q = ConjunctiveQuery([Atom("a", "r", ("X",))])
        assert q.is_boolean

    def test_duplicate_atom_names_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                [Atom("a", "r", ("X",)), Atom("a", "s", ("Y",))]
            )

    def test_unbound_output_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("a", "r", ("X",))], output=["Z"])

    def test_duplicate_output_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("a", "r", ("X",))], output=["X", "X"])

    def test_atom_lookup(self):
        q = self.make()
        assert q.atom("a").relation == "r1"
        with pytest.raises(QueryError):
            q.atom("zzz")

    def test_atoms_with_variable(self):
        q = self.make()
        assert [a.name for a in q.atoms_with_variable("Y")] == ["a", "b"]

    def test_hypergraph(self):
        hg = self.make().hypergraph()
        assert set(hg.edge_names) == {"a", "b"}
        assert hg.vertices == frozenset({"X", "Y", "Z"})

    def test_hypergraph_skips_constant_only_atoms(self):
        q = ConjunctiveQuery(
            [Atom("a", "r", ("X",)), Atom("c", "s", (Constant(1),))]
        )
        assert set(q.hypergraph().edge_names) == {"a"}

    def test_with_output_and_rename(self):
        q = self.make()
        q2 = q.with_output(["Y"])
        assert q2.output == ("Y",)
        assert q.output == ("X", "Z")
        assert q.rename("Q2").name == "Q2"

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        assert self.make() != self.make().with_output(["X"])

    def test_str(self):
        text = str(self.make())
        assert "ans(X, Z)" in text
        assert "∧" in text

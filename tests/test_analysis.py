"""The static-analysis framework: each rule on a known-bad fixture, the
suppression machinery, the reporters, the lint CLI, the dynamic lock-order
witness — and the self-clean gate (zero findings on ``src/repro``)."""

from __future__ import annotations

import json
import os
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import run_analysis, render_json, render_text
from repro.analysis.base import FileSource
from repro.analysis.driver import analyze_file, iter_python_files, resolve_rules
from repro.analysis.lockwitness import (
    LockWitness,
    WitnessLock,
    lockcheck_enabled,
    make_lock,
)
from repro.analysis.rules import ALL_RULES
from repro.cli import main as cli_main
from repro.errors import LockOrderViolation


def lint_fixture(tmp_path: Path, relpath: str, code: str):
    """Write ``code`` at a repo-shaped path and lint just that tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    return run_analysis([str(tmp_path)])


def rule_ids(report):
    return [finding.rule_id for finding in report.findings]


# ---------------------------------------------------------------------------
# checkpoint-coverage
# ---------------------------------------------------------------------------


class TestCheckpointCoverage:
    def test_charging_loop_without_checkpoint_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/engine/bad_scan.py",
            """
            def scan(rows, meter):
                out = []
                for row in rows:
                    meter.charge(1, "scan")
                    out.append(row)
                return out
            """,
        )
        assert rule_ids(report) == ["checkpoint-coverage"]

    def test_checkpoint_anywhere_in_loop_nest_suffices(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/engine/good_scan.py",
            """
            def join(left, right, meter, context):
                out = []
                for n, row in enumerate(left):
                    if n % 4096 == 0:
                        context.checkpoint("exec.join")
                    for other in right:
                        meter.charge(1, "pair")
                        out.append((row, other))
                return out
            """,
        )
        assert report.findings == []

    def test_tick_counts_as_checkpoint(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/engine/tick_scan.py",
            """
            def scan(rows, meter, context):
                for row in rows:
                    context.tick("scan")
                    meter.charge(1, "scan")
            """,
        )
        assert report.findings == []

    def test_parallel_scope_is_covered(self, tmp_path):
        """A charging loop in ``repro/parallel/`` regresses the lint gate."""
        report = lint_fixture(
            tmp_path,
            "repro/parallel/bad_kernel.py",
            """
            def probe(pairs, table, meter):
                out = []
                for key, head in pairs:
                    meter.charge(1, "join-out")
                    out.extend(head + rest for rest in table[key])
                return out
            """,
        )
        assert "checkpoint-coverage" in rule_ids(report)

    def test_parallel_scope_meter_drop_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/parallel/dropped.py",
            """
            def fused(left, right, keep, meter):
                return [row for row in left if row in right]
            """,
        )
        assert "work-charging" in rule_ids(report)

    def test_charge_outside_loops_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/engine/bulk.py",
            """
            def bulk(rows, meter):
                meter.charge(len(rows), "scan")
                return list(rows)
            """,
        )
        assert report.findings == []

    def test_out_of_scope_path_not_checked(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/bench/loops.py",
            """
            def scan(rows, meter):
                for row in rows:
                    meter.charge(1, "scan")
            """,
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# work-charging
# ---------------------------------------------------------------------------


class TestWorkCharging:
    def test_dropped_meter_parameter_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/relational/dropper.py",
            """
            def project(rows, meter):
                return [row[:1] for row in rows]
            """,
        )
        assert rule_ids(report) == ["work-charging"]

    def test_forwarding_the_meter_is_enough(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/relational/forwarder.py",
            """
            def outer(rows, meter):
                return inner(rows, meter=meter)
            """,
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


class TestLockDiscipline:
    BAD = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def bump(self):
            with self._lock:
                self.count += 1

        def reset(self):
            self.count = 0
    """

    def test_unguarded_write_to_guarded_attr_is_flagged(self, tmp_path):
        report = lint_fixture(tmp_path, "repro/service/box.py", self.BAD)
        assert rule_ids(report) == ["lock-discipline"]
        assert "self.count" in report.findings[0].message

    def test_init_and_locked_helpers_are_exempt(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/box_ok.py",
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def _reset_locked(self):
                    self.count = 0
            """,
        )
        assert report.findings == []

    def test_rule_only_fires_in_concurrent_layers(self, tmp_path):
        report = lint_fixture(tmp_path, "repro/engine/box.py", self.BAD)
        assert report.findings == []


# ---------------------------------------------------------------------------
# no-wall-clock
# ---------------------------------------------------------------------------


class TestWallClock:
    def test_time_time_and_global_random_are_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/core/clocky.py",
            """
            import random
            import time
            from datetime import datetime

            def stamp(plan):
                jitter = random.random()
                return (time.time(), datetime.now(), jitter)
            """,
        )
        assert sorted(rule_ids(report)) == ["no-wall-clock"] * 3

    def test_monotonic_clocks_and_seeded_rng_are_allowed(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/core/clean.py",
            """
            import random
            import time

            def measure(seed):
                rng = random.Random(seed)
                started = time.perf_counter()
                return rng.randrange(10), time.monotonic() - started
            """,
        )
        assert report.findings == []

    def test_from_imports_of_banned_names_are_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/engine/imports.py",
            """
            from random import randrange
            from time import time
            """,
        )
        assert sorted(rule_ids(report)) == ["no-wall-clock"] * 2


# ---------------------------------------------------------------------------
# error-swallowing
# ---------------------------------------------------------------------------


class TestErrorSwallowing:
    def test_broad_handler_without_reraise_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/swallow.py",
            """
            def run(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
        )
        assert rule_ids(report) == ["error-swallowing"]

    def test_reraising_handler_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/reraise.py",
            """
            def run(fn, log):
                try:
                    return fn()
                except Exception as exc:
                    log(exc)
                    raise
            """,
        )
        assert report.findings == []

    def test_earlier_abort_clause_sanctions_broad_handler(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/layered.py",
            """
            from repro.errors import DeadlineExceeded, QueryCancelled

            def run(fn, log):
                try:
                    return fn()
                except (QueryCancelled, DeadlineExceeded):
                    raise
                except Exception as exc:
                    log(exc)
                    return None
            """,
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# span-balance
# ---------------------------------------------------------------------------


class TestSpanBalance:
    def test_unmanaged_span_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/obs/leaky.py",
            """
            def trace(tracer):
                span = tracer.span("leak")
                return span
            """,
        )
        assert rule_ids(report) == ["span-balance"]

    def test_with_managed_span_is_fine(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/obs/balanced.py",
            """
            def trace(tracer):
                with tracer.span("ok") as span:
                    return span.name
            """,
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Suppressions, reporters, driver plumbing
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_line_suppression_hides_and_counts(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/sup.py",
            """
            def run(fn):
                try:
                    return fn()
                except Exception:  # hdqo: ignore[error-swallowing]
                    return None
            """,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_file_suppression_covers_every_line(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/service/supfile.py",
            """
            # hdqo: ignore-file[error-swallowing]

            def run(fn):
                try:
                    return fn()
                except Exception:
                    return None
            """,
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_bare_ignore_suppresses_all_rules_on_line(self):
        source = FileSource.parse(
            "repro/x.py", "value = 1  # hdqo: ignore\n"
        )
        assert source.suppressed("anything", 1)
        assert not source.suppressed("anything", 2)


class TestDriver:
    def test_syntax_error_becomes_a_finding(self, tmp_path):
        report = lint_fixture(
            tmp_path, "repro/service/broken.py", "def broken(:\n"
        )
        assert rule_ids(report) == ["syntax-error"]
        assert not report.ok

    def test_unknown_select_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(select=["nope"])

    def test_select_filters_battery(self):
        rules = resolve_rules(select=["span-balance"])
        assert [rule.rule_id for rule in rules] == ["span-balance"]

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [os.path.basename(path) for path in files] == ["real.py"]

    def test_serial_and_parallel_runs_agree(self, tmp_path):
        for index in range(6):
            (tmp_path / f"repro/service/m{index}.py").parent.mkdir(
                parents=True, exist_ok=True
            )
            (tmp_path / f"repro/service/m{index}.py").write_text(
                "def run(fn):\n"
                "    try:\n"
                "        return fn()\n"
                "    except Exception:\n"
                "        return None\n"
            )
        serial = run_analysis([str(tmp_path)], jobs=1)
        parallel = run_analysis([str(tmp_path)], jobs=4)
        assert [f.to_dict() for f in serial.findings] == [
            f.to_dict() for f in parallel.findings
        ]
        assert serial.files == parallel.files == 6


class TestReporters:
    def test_json_report_shape(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/obs/leaky.py",
            """
            def trace(tracer):
                return tracer.span("leak")
            """,
        )
        payload = json.loads(render_json(report))
        assert payload["errors"] == 1
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "span-balance"
        assert finding["path"].endswith("leaky.py")
        assert finding["line"] == 3

    def test_text_report_has_location_and_summary(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/obs/leaky.py",
            """
            def trace(tracer):
                return tracer.span("leak")
            """,
        )
        text = render_text(report)
        assert "leaky.py:3:" in text
        assert "error[span-balance]" in text
        assert "1 error(s)" in text


# ---------------------------------------------------------------------------
# The gate: the repo's own sources are clean
# ---------------------------------------------------------------------------


class TestSelfClean:
    def test_repro_package_has_zero_findings(self):
        package_dir = os.path.dirname(repro.__file__)
        report = run_analysis([package_dir])
        assert report.files > 80
        messages = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"lint findings on src/repro:\n{messages}"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_findings_exit_nonzero_and_json_renders(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "obs" / "leaky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def t(tracer):\n    return tracer.span('x')\n")
        code = cli_main(["lint", "--format", "json", str(tmp_path)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_select_unknown_rule_fails(self, capsys):
        assert cli_main(["lint", "--select", "bogus"]) == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules_prints_catalogue(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


# ---------------------------------------------------------------------------
# Dynamic lock-order witness
# ---------------------------------------------------------------------------


class TestLockWitness:
    def test_opposite_orders_witness_a_cycle(self):
        witness = LockWitness()
        a = WitnessLock("A", witness)
        b = WitnessLock("B", witness)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with pytest.raises(LockOrderViolation) as excinfo:
            witness.assert_clean()
        assert excinfo.value.cycle[0] == excinfo.value.cycle[-1]
        assert {"A", "B"} <= set(excinfo.value.cycle)

    def test_consistent_order_is_clean(self):
        witness = LockWitness()
        a = WitnessLock("A", witness)
        b = WitnessLock("B", witness)
        for _ in range(3):
            with a:
                with b:
                    pass
        witness.assert_clean()
        assert witness.edges() == {"A": {"B"}}

    def test_transitive_cycle_is_witnessed(self):
        witness = LockWitness()
        a, b, c = (WitnessLock(n, witness) for n in "ABC")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        with pytest.raises(LockOrderViolation):
            witness.assert_clean()

    def test_reset_clears_state(self):
        witness = LockWitness()
        a = WitnessLock("A", witness)
        b = WitnessLock("B", witness)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert witness.violations
        witness.reset()
        witness.assert_clean()
        assert witness.edges() == {}

    def test_same_name_reentry_is_not_a_cycle(self):
        witness = LockWitness()
        first = WitnessLock("PlanCache.build", witness)
        second = WitnessLock("PlanCache.build", witness)
        with first:
            with second:
                pass
        witness.assert_clean()

    def test_make_lock_honours_env(self, monkeypatch):
        monkeypatch.delenv("HDQO_LOCKCHECK", raising=False)
        assert not lockcheck_enabled()
        assert not isinstance(make_lock("plain"), WitnessLock)
        monkeypatch.setenv("HDQO_LOCKCHECK", "1")
        assert lockcheck_enabled()
        assert isinstance(make_lock("instrumented"), WitnessLock)

    def test_witness_lock_supports_lock_api(self):
        witness = LockWitness()
        lock = WitnessLock("L", witness)
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        assert "L" in repr(lock)

"""Tests for Boolean (decision) evaluation through decompositions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boolean import evaluate_hd_boolean, is_satisfiable
from repro.core.costkdecomp import cost_k_decomp
from repro.core.costmodel import DecompositionCostModel
from repro.core.qhd import assign_atoms
from repro.engine.scans import atom_relations
from repro.metering import WorkMeter
from repro.query.builder import ConjunctiveQueryBuilder
from repro.relational import AttributeType, Database, Relation, RelationSchema

from tests.conftest import brute_force_answer, random_database_for


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.build()  # Boolean: empty head


def decomposition_for(query):
    model = DecompositionCostModel.uniform(query)
    tree, _ = cost_k_decomp(query.hypergraph(), 2, model)
    assign_atoms(tree, query)
    return tree


class TestEvaluateHdBoolean:
    @pytest.mark.parametrize("seed", list(range(10)))
    def test_matches_brute_force(self, seed):
        q = chain_query(5)
        rng = random.Random(seed)
        db = random_database_for(q, rng, max_rows=8, values=3)
        rels = atom_relations(q, db)
        tree = decomposition_for(q)
        expected = len(brute_force_answer(q.with_output(["V0"]), rels)) > 0
        assert evaluate_hd_boolean(tree, q, rels) == expected

    def test_unsatisfiable_detected_early(self):
        q = chain_query(4)
        rng = random.Random(0)
        db = random_database_for(q, rng)
        rels = atom_relations(q, db)
        rels["p2"] = Relation(rels["p2"].attributes, [])
        tree = decomposition_for(q)
        assert not evaluate_hd_boolean(tree, q, rels)

    def test_uses_only_semijoin_sized_work(self):
        # Boolean evaluation must not enumerate the (possibly large) answer.
        q = chain_query(6)
        rng = random.Random(3)
        db = random_database_for(q, rng, max_rows=30, values=2)  # dense
        rels = atom_relations(q, db)
        tree = decomposition_for(q)
        meter = WorkMeter()
        evaluate_hd_boolean(tree, q, rels, meter=meter)
        total_input = sum(len(r) for r in rels.values())
        assert meter.total < 200 * total_input


class TestIsSatisfiable:
    @pytest.fixture()
    def db(self):
        database = Database("sat")
        database.create_table(
            RelationSchema.of("t", {"a": AttributeType.INT, "b": AttributeType.INT}),
            [(1, 2), (2, 3)],
        )
        database.create_table(
            RelationSchema.of("s", {"b": AttributeType.INT, "c": AttributeType.INT}),
            [(2, 9)],
        )
        database.analyze()
        return database

    def test_satisfiable(self, db):
        assert is_satisfiable("SELECT t.a FROM t, s WHERE t.b = s.b", db)

    def test_unsatisfiable_join(self, db):
        assert not is_satisfiable(
            "SELECT t.a FROM t, s WHERE t.a = s.c", db
        )

    def test_filter_unsatisfiable(self, db):
        assert not is_satisfiable("SELECT t.a FROM t WHERE t.a = 99", db)

    def test_width_exceeded_raises(self, db):
        from repro.errors import DecompositionNotFound

        # A triangle over three copies of t has hypertree width 2.
        tri = (
            "SELECT t1.a FROM t t1, t t2, t t3 "
            "WHERE t1.b = t2.a AND t2.b = t3.a AND t3.b = t1.a"
        )
        with pytest.raises(DecompositionNotFound):
            is_satisfiable(tri, db, max_width=1)
        assert is_satisfiable(tri, db, max_width=2) in (True, False)

    def test_agrees_with_engine(self, db):
        from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS

        sql = "SELECT t.a FROM t, s WHERE t.b = s.b"
        engine = SimulatedDBMS(db, COMMDB_PROFILE).run_sql(sql)
        assert is_satisfiable(sql, db) == (len(engine.relation) > 0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=5),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_property_boolean_matches_enumeration(n, seed):
    q = chain_query(n)
    rng = random.Random(seed)
    db = random_database_for(q, rng, max_rows=8, values=3)
    rels = atom_relations(q, db)
    tree = decomposition_for(q)
    expected = len(brute_force_answer(q.with_output(["V0"]), rels)) > 0
    assert evaluate_hd_boolean(tree, q, rels) == expected

"""Tests for the star-schema synthetic family."""

import pytest

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.errors import QueryError
from repro.hypergraph import is_acyclic
from repro.hypergraph.treedecomp import treewidth_min_fill
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.workloads.synthetic import (
    StarConfig,
    generate_star_database,
    star_query_sql,
)


@pytest.fixture()
def star():
    config = StarConfig(n_dimensions=4, fact_rows=300, dimension_rows=20, seed=5)
    db = generate_star_database(config)
    db.analyze()
    return config, db


class TestGeneration:
    def test_shapes(self, star):
        config, db = star
        assert len(db.table("fact")) == 300
        assert len(db.table("fact").attributes) == 5  # measure + 4 keys
        for i in range(4):
            assert len(db.table(f"dim{i}")) == 20

    def test_keys_in_range(self, star):
        config, db = star
        fact = db.table("fact")
        for i in range(4):
            idx = fact.index_of(f"k{i}")
            assert all(0 <= row[idx] < 20 for row in fact.tuples)

    def test_validation(self):
        with pytest.raises(QueryError):
            StarConfig(n_dimensions=0)
        with pytest.raises(QueryError):
            StarConfig(n_dimensions=2, fact_rows=0)


class TestStructure:
    def test_wide_atom_gap(self, star):
        """The intro's motivating case: acyclic hypergraph (hw 1), clique
        primal graph (treewidth = n_dimensions)."""
        config, db = star
        tr = sql_to_conjunctive(parse_sql(star_query_sql(config)), db.schema.as_mapping())
        hg = tr.query.hypergraph()
        assert is_acyclic(hg)
        assert treewidth_min_fill(hg) >= config.n_dimensions - 1


class TestExecution:
    def test_all_systems_agree(self, star):
        config, db = star
        sql = star_query_sql(config)
        engine = SimulatedDBMS(db, COMMDB_PROFILE).run_sql(sql)
        plan = HybridOptimizer(db, max_width=2).optimize(sql)
        qhd = plan.execute()
        assert engine.relation.same_content(qhd.relation)

    def test_scales_with_dimensions(self):
        for d in (2, 5, 8):
            config = StarConfig(n_dimensions=d, fact_rows=100, dimension_rows=10, seed=d)
            db = generate_star_database(config)
            db.analyze()
            sql = star_query_sql(config)
            plan = HybridOptimizer(db, max_width=2).optimize(sql)
            result = plan.execute()
            baseline = SimulatedDBMS(db, COMMDB_PROFILE).run_sql(sql)
            assert result.relation.same_content(baseline.relation)

"""Property tests for the GEQO genetic machinery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.geqo import CROSS_PRODUCT_PENALTY, GeqoOptimizer
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema


def make_optimizer(n=5, seed=0):
    db = Database("g")
    for i in range(n):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(schema, [(j % 5, j % 7) for j in range(30)])
    db.analyze()
    conditions = " AND ".join(f"r{i}.b{i} = r{i + 1}.a{i + 1}" for i in range(n - 1))
    sql = f"SELECT r0.a0 FROM {', '.join(f'r{i}' for i in range(n))} WHERE {conditions}"
    tr = sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())
    ctx = EstimationContext.build(tr, db, True)
    return GeqoOptimizer(tr, CardinalityEstimator(ctx), seed=seed)


class TestCrossover:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ga_seed=st.integers(min_value=0, max_value=100),
    )
    def test_ox_produces_permutations(self, seed, ga_seed):
        optimizer = make_optimizer(6, seed=ga_seed)
        rng = random.Random(seed)
        aliases = list(optimizer.graph.aliases)
        parent_a = aliases[:]
        parent_b = aliases[:]
        rng.shuffle(parent_a)
        rng.shuffle(parent_b)
        child = optimizer._order_crossover(parent_a, parent_b)
        assert sorted(child) == sorted(aliases)

    def test_mutation_preserves_permutation(self):
        optimizer = make_optimizer(5)
        order = list(optimizer.graph.aliases)
        expected = sorted(order)
        for _ in range(20):
            optimizer._swap_mutate(order)
            assert sorted(order) == expected


class TestFitness:
    def test_connected_order_has_no_penalty(self):
        optimizer = make_optimizer(4)
        order = [f"r{i}" for i in range(4)]  # chain order is connected
        assert optimizer._fitness(order) < CROSS_PRODUCT_PENALTY

    def test_disconnected_order_penalized(self):
        optimizer = make_optimizer(4)
        # r0 then r2 share no variable → cross product at step 2.
        order = ["r0", "r2", "r1", "r3"]
        assert optimizer._fitness(order) >= CROSS_PRODUCT_PENALTY

    def test_better_orders_score_lower(self):
        optimizer = make_optimizer(5)
        connected = [f"r{i}" for i in range(5)]
        shuffled = ["r0", "r4", "r1", "r3", "r2"]
        assert optimizer._fitness(connected) <= optimizer._fitness(shuffled)


class TestSearch:
    def test_finds_connected_plan_from_bad_seeds(self):
        # Whatever the RNG does, enough generations find a penalty-free order.
        for seed in range(5):
            optimizer = make_optimizer(6, seed=seed)
            plan = optimizer.optimize()
            from repro.engine.plan import JoinNode

            crosses = [
                n for n in plan.walk()
                if isinstance(n, JoinNode) and n.is_cross_product
            ]
            assert not crosses

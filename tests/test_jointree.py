"""Tests for join-tree construction over acyclic hypergraphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HypergraphError
from repro.hypergraph import (
    Hypergraph,
    Hyperedge,
    build_join_forest,
    build_join_tree,
    cycle_hypergraph,
    line_hypergraph,
)
from repro.hypergraph.jointree import verify_join_tree


class TestJoinTree:
    def test_line_join_tree(self):
        root = build_join_tree(line_hypergraph(6))
        assert root.size() == 6
        assert verify_join_tree(root)

    def test_cyclic_raises(self):
        with pytest.raises(HypergraphError):
            build_join_tree(cycle_hypergraph(4))

    def test_forest_for_disconnected(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"], "b": ["U", "V"]})
        roots = build_join_forest(hg)
        assert len(roots) == 2

    def test_disconnected_glued_into_tree(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"], "b": ["U", "V"]})
        root = build_join_tree(hg)
        assert root.size() == 2
        assert verify_join_tree(root)

    def test_empty_hypergraph_rejected(self):
        with pytest.raises(HypergraphError):
            build_join_tree(Hypergraph())

    def test_star_schema(self):
        hg = Hypergraph.from_dict(
            {
                "fact": ["K1", "K2", "K3"],
                "dim1": ["K1", "A"],
                "dim2": ["K2", "B"],
                "dim3": ["K3", "C"],
            }
        )
        root = build_join_tree(hg)
        assert verify_join_tree(root)
        assert root.size() == 4

    def test_postorder_visits_children_first(self):
        root = build_join_tree(line_hypergraph(4))
        order = [node.edge.name for node in root.postorder()]
        assert order[-1] == root.edge.name

    def test_walk_preorder(self):
        root = build_join_tree(line_hypergraph(3))
        order = [node.edge.name for node in root.walk()]
        assert order[0] == root.edge.name
        assert len(order) == 3

    def test_verify_join_tree_detects_violation(self):
        # Hand-build a broken "join tree": shared variable not on the path.
        from repro.hypergraph.jointree import JoinTreeNode

        a = JoinTreeNode(Hyperedge("a", ["X", "Y"]))
        b = JoinTreeNode(Hyperedge("b", ["Z"]))
        c = JoinTreeNode(Hyperedge("c", ["X"]))
        a.add_child(b)
        b.add_child(c)  # X occurs at a and c, but not at b: violation
        assert not verify_join_tree(a)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=15))
def test_line_join_trees_always_verify(n):
    root = build_join_tree(line_hypergraph(n, shared=1, private=2))
    assert verify_join_tree(root)
    assert root.size() == n

"""Behavioural tests for guard ordering — the §4.1 topological-order caveat.

The paper warns that after Procedure Optimize, "the topological order used
in the evaluation of the join tree should take care of the children used
for the simplification, that have to be joined with their parent before the
other siblings. Otherwise, intermediate relations with exponentially many
tuples can be temporarily computed."  These tests pin the mechanism: guards
are folded first, and an evaluator that ignored them would do more work.
"""

import random

import pytest

from repro.core.detkdecomp import det_k_decomp
from repro.core.evaluator import QHDEvaluator, evaluate_qhd
from repro.core.qhd import assign_atoms, procedure_optimize
from repro.engine.scans import atom_relations
from repro.metering import WorkMeter
from repro.query.builder import ConjunctiveQueryBuilder
from repro.relational import AttributeType, Database, RelationSchema


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output("V0").build()


def chain_database(n, rows=80, domain=12, seed=0):
    rng = random.Random(seed)
    db = Database("guards")
    for i in range(n):
        schema = RelationSchema.of(
            f"rel{i}", {f"x{i}": AttributeType.INT, f"y{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)]
        )
    return db


def optimized_tree(query):
    tree = det_k_decomp(
        query.hypergraph(), 2, required_root_cover=query.output_variables
    )
    assign_atoms(tree, query)
    removed = procedure_optimize(tree)
    assert removed > 0, "this workload must trigger Optimize removals"
    return tree


class TestGuardOrdering:
    def test_guards_come_first_in_child_order(self):
        query = chain_query(6)
        tree = optimized_tree(query)
        for node in tree.root.walk():
            if not node.guards:
                continue
            ordered = node.ordered_children()
            guard_ids = {id(child) for child in node.guards.values()}
            prefix_len = len([c for c in ordered if id(c) in guard_ids])
            assert all(id(c) in guard_ids for c in ordered[:prefix_len])

    def test_guarded_evaluation_is_correct(self):
        query = chain_query(6)
        db = chain_database(6, seed=3)
        tree = optimized_tree(query)
        rels = atom_relations(query, db)
        answer = evaluate_qhd(tree, query, rels)

        # Reference: the unoptimized decomposition on the same data.
        reference_tree = det_k_decomp(
            query.hypergraph(), 2, required_root_cover=query.output_variables
        )
        assign_atoms(reference_tree, query)
        reference = evaluate_qhd(reference_tree, query, rels)
        assert answer.same_content(reference)

    def test_guarded_evaluation_never_does_more_work(self):
        query = chain_query(8)
        db = chain_database(8, rows=120, domain=10, seed=1)
        rels = atom_relations(query, db)

        optimized = optimized_tree(query)
        plain = det_k_decomp(
            query.hypergraph(), 2, required_root_cover=query.output_variables
        )
        assign_atoms(plain, query)

        m_opt, m_plain = WorkMeter(), WorkMeter()
        evaluate_qhd(optimized, query, rels, meter=m_opt)
        evaluate_qhd(plain, query, rels, meter=m_plain)
        assert m_opt.total <= m_plain.total

    def test_guard_atoms_absent_from_lambda(self):
        query = chain_query(6)
        tree = optimized_tree(query)
        for node in tree.root.walk():
            for removed_atom in node.guards:
                assert removed_atom not in node.lam

    def test_validator_passes_on_guarded_tree(self):
        from repro.core.validate import validate_decomposition

        query = chain_query(6)
        tree = optimized_tree(query)
        report = validate_decomposition(tree, query)
        assert report.ok, report.render()

"""Tests for biconnected components, validated against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph import Hypergraph, cycle_hypergraph, line_hypergraph
from repro.hypergraph.algorithms import primal_graph
from repro.hypergraph.biconnected import (
    biconnected_components,
    biconnected_width,
    block_cut_tree,
    primal_biconnected_components,
)


def to_adjacency(graph: nx.Graph):
    return {v: set(graph.neighbors(v)) for v in graph.nodes}


def normalize(blocks):
    return sorted(tuple(sorted(b)) for b in blocks if len(b) > 1)


class TestAgainstNetworkx:
    def check(self, graph: nx.Graph):
        ours, our_arts = biconnected_components(to_adjacency(graph))
        theirs = [frozenset(c) for c in nx.biconnected_components(graph)]
        assert normalize(ours) == normalize(theirs)
        assert set(our_arts) == set(nx.articulation_points(graph))

    def test_path(self):
        self.check(nx.path_graph(6))

    def test_cycle(self):
        self.check(nx.cycle_graph(5))

    def test_two_triangles_sharing_a_vertex(self):
        graph = nx.Graph(
            [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e"), ("e", "c")]
        )
        self.check(graph)

    def test_star(self):
        self.check(nx.star_graph(5))

    def test_complete(self):
        self.check(nx.complete_graph(6))

    def test_barbell(self):
        self.check(nx.barbell_graph(4, 2))

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=14),
        p=st.floats(min_value=0.1, max_value=0.7),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_graphs(self, n, p, seed):
        graph = nx.gnp_random_graph(n, p, seed=seed)
        graph = nx.relabel_nodes(graph, {i: f"v{i}" for i in graph.nodes})
        if graph.number_of_edges() == 0:
            return
        self.check(graph)


class TestHypergraphLevel:
    def test_acyclic_line_blocks_are_edges(self):
        hg = line_hypergraph(5, private=0)
        width = biconnected_width(hg)
        assert width == 2  # binary shared links only

    def test_cycle_is_one_big_block(self):
        hg = cycle_hypergraph(6, private=0)
        components, _ = primal_biconnected_components(hg)
        assert max(len(c) for c in components) == 6
        assert biconnected_width(hg) == 6

    def test_hypertree_width_beats_biconnected_width(self):
        # The motivating gap: hw(cycle) = 2 but Freuder's bound grows with n.
        from repro.core.detkdecomp import hypertree_width

        for n in (4, 6, 8):
            hg = cycle_hypergraph(n, private=0)
            assert hypertree_width(hg) == 2
            assert biconnected_width(hg) == n

    def test_empty_hypergraph(self):
        assert biconnected_width(Hypergraph()) == 0

    def test_isolated_vertices_singleton_blocks(self):
        adjacency = {"a": set(), "b": {"c"}, "c": {"b"}}
        components, arts = biconnected_components(adjacency)
        assert frozenset({"a"}) in components
        assert not arts

    def test_block_cut_tree_is_forest(self):
        hg = Hypergraph.from_dict(
            {
                "t1": ["A", "B"],
                "t2": ["B", "C"],
                "t3": ["C", "A"],  # triangle block
                "t4": ["C", "D"],
                "t5": ["D", "E"],
                "t6": ["E", "C"],  # second triangle sharing C
            }
        )
        tree = block_cut_tree(hg)
        n_blocks = len(tree)
        n_edges = sum(len(neigh) for neigh in tree.values()) // 2
        assert n_edges <= n_blocks - 1  # forest property
        assert n_blocks == 2
        assert n_edges == 1

"""Tests for the fluent query builders."""

import pytest

from repro.errors import QueryError
from repro.query import ast
from repro.query.builder import ConjunctiveQueryBuilder, SqlQueryBuilder
from repro.query.conjunctive import Constant
from repro.query.parser import parse_sql


class TestConjunctiveQueryBuilder:
    def test_basic_build(self):
        q = (
            ConjunctiveQueryBuilder("chain")
            .atom("p0", "rel0", "X0", "X1")
            .atom("p1", "rel1", "X1", "X2")
            .output("X0", "X2")
            .build()
        )
        assert q.name == "chain"
        assert len(q.atoms) == 2
        assert q.output == ("X0", "X2")

    def test_relation_defaults_to_name(self):
        q = ConjunctiveQueryBuilder().atom("r", None, "X").build()
        assert q.atom("r").relation == "r"

    def test_constants(self):
        q = ConjunctiveQueryBuilder().atom("r", "rel", "X", Constant(3)).build()
        assert q.atom("r").variables == frozenset({"X"})


class TestSqlQueryBuilder:
    def test_full_query(self):
        q = (
            SqlQueryBuilder()
            .select("n_name")
            .select_sum("l_extendedprice", alias="revenue")
            .from_table("nation")
            .from_table("lineitem")
            .where_eq("n_nationkey", "l_nationkey")
            .where_const("n_name", "=", "ASIA")
            .group_by("n_name")
            .order_by("revenue", descending=True)
            .limit(5)
            .build()
        )
        assert len(q.tables) == 2
        assert q.limit == 5
        assert q.has_aggregates
        assert q.order_by[0].descending

    def test_build_sql_round_trips(self):
        sql = (
            SqlQueryBuilder()
            .select("t.a")
            .from_table("t")
            .where_const("t.b", ">", 3)
            .build_sql()
        )
        reparsed = parse_sql(sql)
        assert reparsed.predicates[0].op == ">"

    def test_qualified_column_parsing(self):
        q = (
            SqlQueryBuilder()
            .select("n1.n_name")
            .from_table("nation", alias="n1")
            .build()
        )
        assert q.select_items[0].expr == ast.ColumnRef("n1", "n_name")

    def test_distinct_and_count(self):
        q = (
            SqlQueryBuilder()
            .select_count(alias="n")
            .distinct()
            .from_table("t")
            .build()
        )
        assert q.distinct
        assert q.select_items[0].expr.name == "count"

    def test_empty_select_rejected(self):
        with pytest.raises(QueryError):
            SqlQueryBuilder().from_table("t").build()

    def test_empty_from_rejected(self):
        with pytest.raises(QueryError):
            SqlQueryBuilder().select("a").build()

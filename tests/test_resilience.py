"""Tests for the resilience layer: deadlines, cancellation, budgets,
fault injection, the circuit breaker, and the degradation ladder."""

import threading

import pytest

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    MemoryBudgetExceeded,
    QueryCancelled,
    WorkBudgetExceeded,
)
from repro.obs.tracing import tracing
from repro.resilience import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    ExecutionContext,
    FaultInjector,
    MemoryBudget,
    NULL_CONTEXT,
    current_context,
    parse_faultspec,
    resilient,
)
from repro.service.server import QueryService


@pytest.fixture()
def service(chain_db):
    svc = QueryService(
        SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=2
    )
    yield svc
    svc.close()


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_expiry_with_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.9)
        deadline.check("decompose.search")  # still inside the budget
        clock.advance(0.2)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("decompose.search")
        assert err.value.site == "decompose.search"
        assert err.value.deadline_seconds == 5.0
        assert err.value.elapsed_seconds == pytest.approx(5.1)

    def test_from_ms(self):
        clock = FakeClock()
        assert Deadline.from_ms(250, clock=clock).seconds == pytest.approx(0.25)

    def test_earliest_composition(self):
        clock = FakeClock()
        short = Deadline(1.0, clock=clock)
        long = Deadline(10.0, clock=clock)
        assert Deadline.earliest(long, short) is short
        assert Deadline.earliest(None, long) is long
        assert Deadline.earliest(None, None) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestCancellationToken:
    def test_cancel_observed_with_reason(self):
        token = CancellationToken()
        token.check("exec.join")  # no-op while live
        token.cancel("client went away")
        assert token.cancelled
        with pytest.raises(QueryCancelled) as err:
            token.check("exec.join")
        assert err.value.reason == "client went away"
        assert err.value.site == "exec.join"

    def test_parent_cancellation_propagates(self):
        drain = CancellationToken()
        query = CancellationToken(parents=(drain,))
        assert not query.cancelled
        drain.cancel("service draining")
        assert query.cancelled
        assert query.reason == "service draining"

    def test_child_token(self):
        parent = CancellationToken()
        child = parent.child()
        parent.cancel("stop")
        assert child.cancelled

    def test_cancel_from_another_thread(self):
        token = CancellationToken()
        thread = threading.Thread(target=token.cancel, args=("remote",))
        thread.start()
        thread.join(timeout=5)
        assert token.cancelled and token.reason == "remote"


class TestMemoryBudget:
    def test_cell_budget(self):
        budget = MemoryBudget(max_cells=100)
        budget.account(rows=10, row_width=5, site="exec.join")  # 50 cells
        with pytest.raises(MemoryBudgetExceeded) as err:
            budget.account(rows=20, row_width=5, site="exec.join")
        assert err.value.budget_cells == 100
        assert err.value.cells == 150
        assert err.value.site == "exec.join"

    def test_release_frees_cells(self):
        budget = MemoryBudget(max_cells=100)
        budget.account(rows=10, row_width=5)
        budget.release(rows=10, row_width=5)
        budget.account(rows=19, row_width=5)  # fits again after the release
        snap = budget.snapshot()
        assert snap["live_cells"] == 95
        assert snap["peak_cells"] == 95
        assert snap["intermediates"] == 2

    def test_max_intermediate_rows(self):
        budget = MemoryBudget(max_intermediate_rows=1000)
        budget.account(rows=1000, row_width=2)
        with pytest.raises(MemoryBudgetExceeded) as err:
            budget.account(rows=1001, row_width=2)
        assert err.value.max_rows == 1000
        assert err.value.rows == 1001


class TestFaultInjector:
    def test_parse_faultspec(self):
        specs = parse_faultspec(
            "decompose.search:error:0.5,exec.join:latency:0.1:5"
        )
        assert [s.site for s in specs] == ["decompose.search", "exec.join"]
        assert specs[0].period == 2
        assert specs[1].period == 10
        assert specs[1].param == 5.0

    def test_parse_rejects_bad_clauses(self):
        with pytest.raises(ValueError):
            parse_faultspec("just-a-site")
        with pytest.raises(ValueError):
            parse_faultspec("site:unknown-kind:0.5")
        with pytest.raises(ValueError):
            parse_faultspec("site:error:0")

    def test_rate_one_always_fires(self):
        injector = FaultInjector("exec.join:error:1.0", seed=0)
        for _ in range(3):
            with pytest.raises(InjectedFault) as err:
                injector.fire("exec.join")
            assert err.value.site == "exec.join"
        assert injector.snapshot()["fired"]["exec.join:error"] == 3

    def test_unarmed_sites_are_free(self):
        injector = FaultInjector("exec.join:error:1.0")
        injector.fire("exec.scan")  # no rule: no-op

    def test_budget_kind_raises_work_budget(self):
        injector = FaultInjector("exec.scan:budget:1.0")
        with pytest.raises(WorkBudgetExceeded) as err:
            injector.fire("exec.scan")
        assert err.value.phase == "exec.scan"

    def test_deterministic_fire_indices(self):
        """Same seed + spec fire at the same per-site call indices."""

        def fired_indices(seed):
            injector = FaultInjector("exec.join:error:0.25", seed=seed)
            hits = []
            for i in range(40):
                try:
                    injector.fire("exec.join")
                except InjectedFault:
                    hits.append(i)
            return hits

        first, second = fired_indices(7), fired_indices(7)
        assert first == second
        assert len(first) == 10  # rate 0.25 over 40 calls
        assert fired_indices(8) != first  # the seed shifts the phase

    def test_determinism_across_threads(self):
        """Per-site counters make firing independent of interleaving."""

        def storm(injector):
            faults = 0
            barrier = threading.Barrier(4)
            lock = threading.Lock()

            def worker():
                nonlocal faults
                barrier.wait(timeout=10)
                for _ in range(25):
                    try:
                        injector.fire("exec.join")
                    except InjectedFault:
                        with lock:
                            faults += 1

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            return faults

        a = storm(FaultInjector("exec.join:error:0.1", seed=3))
        b = storm(FaultInjector("exec.join:error:0.1", seed=3))
        assert a == b == 10  # 100 calls at rate 0.1, whatever the schedule


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=30.0, clock=clock
        )
        for _ in range(2):
            breaker.record_failure("q1")
            assert breaker.allow("q1")
        breaker.record_failure("q1")
        assert breaker.state_of("q1") == "open"
        assert not breaker.allow("q1")
        assert breaker.allow("q2")  # other keys unaffected

    def test_half_open_trial_and_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=30.0, clock=clock
        )
        breaker.record_failure("q")
        assert not breaker.allow("q")
        clock.advance(31)
        assert breaker.allow("q")  # the one half-open trial
        assert not breaker.allow("q")  # concurrent callers still skipped
        breaker.record_success("q")
        assert breaker.state_of("q") == "closed"
        assert breaker.allow("q")

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, cooldown_seconds=10.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure("q")
        clock.advance(11)
        assert breaker.allow("q")
        breaker.record_failure("q")  # one failure re-opens in half-open
        assert breaker.state_of("q") == "open"
        assert not breaker.allow("q")
        assert breaker.snapshot()["trips"] == 2


class TestExecutionContext:
    def test_default_is_null_context(self):
        context = current_context()
        assert context is NULL_CONTEXT
        assert not context.active
        context.checkpoint("anywhere")  # all no-ops
        context.tick("anywhere")
        context.account(10, 10)

    def test_resilient_installs_and_restores(self):
        token = CancellationToken()
        with resilient(token=token) as context:
            assert current_context() is context
            assert context.active
        assert current_context() is NULL_CONTEXT

    def test_resilient_is_thread_local(self):
        seen = []
        with resilient(token=CancellationToken()):

            def probe():
                seen.append(current_context())

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=5)
        assert seen == [NULL_CONTEXT]

    def test_checkpoint_order_cancel_before_deadline(self):
        clock = FakeClock()
        context = ExecutionContext(
            deadline=Deadline(1.0, clock=clock), token=CancellationToken()
        )
        clock.advance(2)
        context.token.cancel("client cancel")
        with pytest.raises(QueryCancelled):
            context.checkpoint("exec.join")

    def test_tick_amortizes_per_site(self):
        clock = FakeClock()
        context = ExecutionContext(
            deadline=Deadline(1.0, clock=clock), stride=4
        )
        clock.advance(2)
        for _ in range(3):
            context.tick("exec.join")  # under the stride: no clock check
        with pytest.raises(DeadlineExceeded):
            context.tick("exec.join")


# ---------------------------------------------------------------------------
# Enforcement through the engine
# ---------------------------------------------------------------------------


class TestEngineEnforcement:
    def test_deadline_aborts_query(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)  # already expired: first checkpoint trips
        with resilient(deadline=deadline):
            with pytest.raises(DeadlineExceeded) as err:
                dbms.run_sql(chain_sql)
        assert err.value.site  # locates the checkpoint that caught it

    def test_cancellation_aborts_query(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        token = CancellationToken()
        token.cancel("test cancel")
        with resilient(token=token):
            with pytest.raises(QueryCancelled) as err:
                dbms.run_sql(chain_sql)
        assert err.value.reason == "test cancel"

    def test_memory_budget_aborts_join(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        with resilient(memory=MemoryBudget(max_cells=8)):
            with pytest.raises(MemoryBudgetExceeded) as err:
                dbms.run_sql(chain_sql)
        assert err.value.cells > 8
        assert err.value.site.startswith("exec.")

    def test_work_budget_mid_operator_context(self, chain_db, chain_sql):
        """The budget error carries phase + a spent figure near the budget,
        not the whole operator's cost (mid-operator enforcement)."""
        from repro.metering import WorkMeter

        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        translation = dbms.translate(chain_sql)
        unbounded = WorkMeter()
        dbms.plan_and_join(translation, unbounded, True, True)
        budget = max(unbounded.total // 4, 2)
        meter = WorkMeter(budget=budget)
        with pytest.raises(WorkBudgetExceeded) as err:
            dbms.plan_and_join(translation, meter, True, True)
        assert err.value.phase  # locates the charge inside an operator
        assert err.value.budget == budget
        assert err.value.spent > budget
        # Aborted mid-run: never pays the full unbounded cost.
        assert err.value.spent < unbounded.total
        assert meter.total < unbounded.total

    def test_no_context_runs_clean(self, chain_db, chain_sql):
        """No active context: the instrumented engine behaves identically."""
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        result = dbms.run_sql(chain_sql)
        assert result.finished


# ---------------------------------------------------------------------------
# Enforcement through the service
# ---------------------------------------------------------------------------


class TestServiceEnforcement:
    def test_deadline_miss_counted(self, chain_db, chain_sql):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            deadline_seconds=1e-9,
        ) as svc:
            with pytest.raises(DeadlineExceeded):
                svc.execute(chain_sql)
            snap = svc.snapshot()
            assert snap["resilience"]["deadline_misses"] == 1
            assert snap["queries"]["errors"] == 1

    def test_per_call_deadline_overrides_default(self, chain_sql, service):
        assert service.execute(chain_sql).finished
        with pytest.raises(DeadlineExceeded):
            service.execute(chain_sql, deadline_seconds=1e-9)

    def test_client_token_cancels_query(self, chain_db, chain_sql):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=1
        ) as svc:
            token = CancellationToken()
            token.cancel("caller aborted")
            with pytest.raises(QueryCancelled):
                svc.execute(chain_sql, token=token)
            assert svc.snapshot()["resilience"]["cancellations"] == 1

    def test_memory_abort_counted(self, chain_db, chain_sql):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            memory_budget_cells=8,
        ) as svc:
            with pytest.raises(MemoryBudgetExceeded):
                svc.execute(chain_sql)
            assert svc.snapshot()["resilience"]["memory_aborts"] == 1

    def test_drain_cancels_and_joins(self, chain_db, chain_sql):
        svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=2
        )
        svc.execute(chain_sql)
        assert svc.drain(grace_seconds=10.0)
        assert svc.snapshot()["pool"]["active"] == 0
        # The engine's built-in planner is restored.
        assert svc.dbms.optimizer_handler is None

    def test_drain_cancels_in_flight_queries(self, chain_db, chain_sql):
        entered, release = threading.Event(), threading.Event()
        svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=1
        )
        token = CancellationToken()

        def run():
            try:
                entered.set()
                release.wait(timeout=10)
                svc.execute(chain_sql, token=token)
            except QueryCancelled:
                pass

        thread = threading.Thread(target=run)
        thread.start()
        assert entered.wait(timeout=5)
        svc.drain_token.cancel("draining")
        release.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        # The drain token parents every query token: the query aborted.
        assert svc.snapshot()["resilience"]["cancellations"] == 1
        svc.close()


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def test_forced_search_failure_lands_on_builtin(self, chain_db, chain_sql):
        """Ladder step 3: injected search failure → built-in answer +
        fallback counter + degraded_to span tag."""
        baseline = SimulatedDBMS(chain_db, COMMDB_PROFILE).run_sql(chain_sql)
        injector = FaultInjector("decompose.search:error:1.0", seed=0)
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            fault_injector=injector,
        ) as svc:
            with tracing() as tracer:
                result = svc.execute(chain_sql)
            assert result.optimizer == "builtin-fallback"
            assert result.relation.same_content(baseline.relation)
            assert svc.snapshot()["planning"]["fallbacks"] == 1
            (plan_span,) = tracer.spans("serve.plan")
            assert plan_span.tags["degraded_to"] == "builtin"
            assert plan_span.tags["error"] == "InjectedFault"

    def test_lower_k_cached_plan_serves(self, chain_db, chain_sql):
        """Ladder step 2: a cached width-1 plan serves when the k=2 search
        is failing — lookup + rename only, no new search."""
        acyclic_sql = """
        SELECT r0.a0, r0.b0 FROM r0 WHERE r0.a0 = r0.a0
        """
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        svc = QueryService(dbms, max_width=2, workers=1)
        try:
            # Seed the shared cache with the same template at k=1, exactly
            # as a previous lower-width deployment would have.
            from repro.core.integration import install_structural_optimizer

            install_structural_optimizer(
                dbms,
                max_width=1,
                plan_cache=svc.plan_cache,
                metrics=svc.metrics,
            )
            seeded = dbms.run_sql(acyclic_sql)
            assert seeded.optimizer == "q-hd"
            dbms.set_optimizer_handler(svc._handler)  # back to the k=2 path

            # Now make the k=2 search fail; the cached k=1 plan must serve.
            svc.fault_injector = injector = FaultInjector(
                "decompose.search:error:1.0,plancache.get:error:1.0", seed=0
            )
            with tracing() as tracer:
                result = svc.execute(acyclic_sql)
            assert result.optimizer == "q-hd(k=1)"
            assert result.relation.same_content(seeded.relation)
            assert svc.snapshot()["resilience"]["degraded_lower_k"] == 1
            spans = tracer.spans("serve.plan")
            assert spans[-1].tags["degraded_to"] == "lower-k(1)"
            assert injector.snapshot()["fired"]  # the failure was injected
        finally:
            svc.close()

    def test_breaker_skips_repeatedly_failing_template(
        self, chain_db, chain_sql
    ):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=30.0, clock=clock
        )
        injector = FaultInjector("decompose.search:error:1.0", seed=0)
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            cache_capacity=0,  # force a search (and a failure) per query
            fault_injector=injector,
            breaker=breaker,
        ) as svc:
            for _ in range(3):
                assert svc.execute(chain_sql).optimizer == "builtin-fallback"
            assert breaker.snapshot()["open"] == 1
            with tracing() as tracer:
                result = svc.execute(chain_sql)  # breaker open: no search
            assert result.optimizer == "builtin-fallback"
            assert svc.snapshot()["resilience"]["breaker_skips"] == 1
            (span,) = tracer.spans("serve.plan")
            assert span.tags.get("breaker_open") is True
            # After the cooldown, a half-open trial runs the search again.
            calls_before = injector.snapshot()["calls"]["decompose.search"]
            clock.advance(31)
            svc.execute(chain_sql)
            assert (
                injector.snapshot()["calls"]["decompose.search"]
                > calls_before
            )

    def test_ladder_raises_typed_error_without_fallback(
        self, chain_db, chain_sql
    ):
        injector = FaultInjector("decompose.search:error:1.0", seed=0)
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            fallback_to_builtin=False,
            fault_injector=injector,
        ) as svc:
            with pytest.raises(InjectedFault):
                svc.execute(chain_sql)


# ---------------------------------------------------------------------------
# The overhead guarantee
# ---------------------------------------------------------------------------


class TestOverheadGuarantee:
    def test_q5_work_units_identical_with_null_context(self, tiny_tpch):
        """ISSUE acceptance: deadline enforcement adds ≤2 % work units on
        TPC-H Q5 when no deadline is set.  Work units are deterministic, so
        we can assert the stronger property: with no context active the
        checkpoints are no-ops and the counts are bit-identical; with an
        *empty* context active they still charge nothing."""
        from repro.workloads.tpch_queries import query_q5

        dbms = SimulatedDBMS(tiny_tpch, COMMDB_PROFILE)
        bare = dbms.run_sql(query_q5())
        assert current_context() is NULL_CONTEXT
        again = dbms.run_sql(query_q5())
        assert again.work == bare.work
        with resilient(ExecutionContext()):  # active but unbounded
            bounded = dbms.run_sql(query_q5())
        assert bounded.work == bare.work  # checkpoints charge no work units
        assert bounded.relation.same_content(bare.relation)

    def test_service_skips_context_when_unbounded(self, chain_db):
        svc = QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=1
        )
        try:
            assert svc._make_context(None, None) is None
            assert svc._make_context(0.5, None) is not None
        finally:
            svc.close()

"""Tests for ANALYZE statistics and the catalog."""

import pytest

from repro.errors import SchemaError
from repro.metering import WorkMeter
from repro.relational import Relation, StatisticsCatalog, analyze_relation


@pytest.fixture()
def rel():
    return Relation(
        ["k", "v"],
        [(1, "a"), (2, "a"), (3, "b"), (4, "a"), (4, "c")],
        name="t",
    )


class TestAnalyze:
    def test_row_count_and_distinct(self, rel):
        stats = analyze_relation(rel)
        assert stats.row_count == 5
        assert stats.attribute("k").n_distinct == 4
        assert stats.attribute("v").n_distinct == 3

    def test_min_max(self, rel):
        stats = analyze_relation(rel)
        assert stats.attribute("k").min_value == 1
        assert stats.attribute("k").max_value == 4
        assert stats.attribute("v").min_value == "a"

    def test_most_common_values(self, rel):
        stats = analyze_relation(rel)
        mcv = stats.attribute("v").most_common
        assert mcv[0] == ("a", 3)

    def test_mcv_limit(self, rel):
        stats = analyze_relation(rel, mcv_limit=1)
        assert len(stats.attribute("k").most_common) == 1

    def test_empty_relation(self):
        stats = analyze_relation(Relation(["a"], [], name="e"))
        assert stats.row_count == 0
        assert stats.attribute("a").min_value is None
        assert stats.attribute("a").n_distinct == 0

    def test_selectivity(self, rel):
        stats = analyze_relation(rel)
        assert stats.attribute("k").selectivity == pytest.approx(0.25)

    def test_distinct_defaults_to_rowcount_for_unknown(self, rel):
        stats = analyze_relation(rel)
        assert stats.distinct("unknown_attr") == 5

    def test_attribute_error(self, rel):
        stats = analyze_relation(rel)
        with pytest.raises(SchemaError):
            stats.attribute("zzz")

    def test_work_charged_per_scan(self, rel):
        meter = WorkMeter()
        analyze_relation(rel, meter=meter)
        # One pass per attribute: 2 × 5 rows.
        assert meter.total == 10
        assert meter.by_category["analyze"] == 10


class TestCatalog:
    def test_put_get(self, rel):
        catalog = StatisticsCatalog()
        catalog.put(analyze_relation(rel))
        assert "t" in catalog
        assert catalog.get("T").row_count == 5
        assert catalog.get("missing") is None

    def test_require(self, rel):
        catalog = StatisticsCatalog()
        with pytest.raises(SchemaError):
            catalog.require("t")
        catalog.put(analyze_relation(rel))
        assert catalog.require("t").row_count == 5

    def test_manual_statistics(self):
        catalog = StatisticsCatalog()
        catalog.put_manual("orders", row_count=15000, distinct_counts={"o_custkey": 1500})
        stats = catalog.require("orders")
        assert stats.row_count == 15000
        assert stats.distinct("o_custkey") == 1500

    def test_clear_and_len(self, rel):
        catalog = StatisticsCatalog()
        catalog.put(analyze_relation(rel))
        assert len(catalog) == 1
        catalog.clear()
        assert len(catalog) == 0

"""Tests for base-scan construction (atom_relations)."""

import pytest

from repro.errors import QueryError
from repro.engine.scans import (
    apply_residual_filters,
    atom_relations,
    atom_relations_positional,
    atom_relations_sql,
)
from repro.metering import WorkMeter
from repro.query.builder import ConjunctiveQueryBuilder
from repro.query.conjunctive import Constant
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema


@pytest.fixture()
def db():
    database = Database("scans")
    database.create_table(
        RelationSchema.of(
            "t", {"a": AttributeType.INT, "b": AttributeType.INT, "c": AttributeType.INT}
        ),
        [(1, 1, 5), (1, 2, 6), (2, 2, 7), (3, 3, 8)],
    )
    database.create_table(
        RelationSchema.of("s", {"b": AttributeType.INT, "d": AttributeType.INT}),
        [(1, 10), (2, 20)],
    )
    return database


class TestSqlMode:
    def test_variables_renamed(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t, s WHERE t.b = s.b"),
            db.schema.as_mapping(),
        )
        rels = atom_relations(tr.query, db, tr)
        t_rel = rels["t"]
        assert set(t_rel.attributes) == set(tr.query.atom("t").terms)

    def test_filters_pushed(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t WHERE t.a = 1"),
            db.schema.as_mapping(),
        )
        rels = atom_relations(tr.query, db, tr)
        assert len(rels["t"]) == 2

    def test_intra_atom_equality_applied(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t WHERE t.a = t.b"),
            db.schema.as_mapping(),
        )
        rels = atom_relations(tr.query, db, tr)
        # rows with a = b: (1,1,5), (2,2,7), (3,3,8) → 3 distinct c values
        assert len(rels["t"]) == 3

    def test_scan_work_charged(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t"), db.schema.as_mapping()
        )
        meter = WorkMeter()
        atom_relations(tr.query, db, tr, meter)
        assert meter.by_category["scan"] == 4

    def test_unpushed_filters_returned_as_residual(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t WHERE t.a = 1"),
            db.schema.as_mapping(),
        )
        rels, residual = atom_relations_sql(
            tr.query, db, tr, push_filters=False
        )
        assert len(rels["t"]) == 4  # unfiltered
        assert len(residual) == 1

    def test_residual_filters_applied_on_result(self, db):
        tr = sql_to_conjunctive(
            parse_sql("SELECT t.c FROM t WHERE t.a = 1"),
            db.schema.as_mapping(),
        )
        rels, residual = atom_relations_sql(
            tr.query, db, tr, push_filters=False
        )
        filtered = apply_residual_filters(rels["t"], residual)
        a_var = tr.variable_for("t", "a")
        idx = filtered.index_of(a_var)
        assert all(row[idx] == 1 for row in filtered.tuples)


class TestPositionalMode:
    def test_basic_binding(self, db):
        q = ConjunctiveQueryBuilder().atom("x", "s", "B", "D").output("D").build()
        rels = atom_relations_positional(q, db)
        assert set(rels["x"].attributes) == {"B", "D"}
        assert len(rels["x"]) == 2

    def test_constant_term_filters(self, db):
        q = (
            ConjunctiveQueryBuilder()
            .atom("x", "s", Constant(1), "D")
            .output("D")
            .build()
        )
        rels = atom_relations_positional(q, db)
        assert rels["x"].tuples == [(10,)]
        assert rels["x"].attributes == ("D",)

    def test_repeated_variable_enforces_equality(self, db):
        q = ConjunctiveQueryBuilder().atom("x", "t", "V", "V", "C").output("C").build()
        rels = atom_relations_positional(q, db)
        # rows with a = b → c ∈ {5, 7, 8}
        assert len(rels["x"]) == 3

    def test_arity_mismatch_rejected(self, db):
        q = ConjunctiveQueryBuilder().atom("x", "s", "A").output("A").build()
        with pytest.raises(QueryError, match="arity"):
            atom_relations_positional(q, db)

    def test_dispatch_without_translation(self, db):
        q = ConjunctiveQueryBuilder().atom("x", "s", "B", "D").output("D").build()
        rels = atom_relations(q, db)  # no translation → positional
        assert "x" in rels

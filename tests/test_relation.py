"""Tests for the relational algebra."""

import pytest

from repro.errors import SchemaError, WorkBudgetExceeded
from repro.metering import WorkMeter
from repro.relational import Relation


@pytest.fixture()
def r():
    return Relation(["a", "b"], [(1, "x"), (2, "y"), (2, "z"), (1, "x")], name="r")


@pytest.fixture()
def s():
    return Relation(["b", "c"], [("x", 10), ("y", 20), ("y", 21)], name="s")


class TestBasics:
    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            Relation(["a", "a"], [])
        with pytest.raises(SchemaError):
            Relation(["a"], [(1, 2)])

    def test_index_and_column(self, r):
        assert r.index_of("b") == 1
        assert r.column("a") == [1, 2, 2, 1]
        with pytest.raises(SchemaError):
            r.index_of("zzz")

    def test_same_content_ignores_attribute_order(self):
        r1 = Relation(["a", "b"], [(1, "x")])
        r2 = Relation(["b", "a"], [("x", 1)])
        assert r1.same_content(r2)

    def test_same_content_respects_multiplicity(self):
        r1 = Relation(["a"], [(1,), (1,)])
        r2 = Relation(["a"], [(1,)])
        assert not r1.same_content(r2)

    def test_copy_is_independent(self, r):
        c = r.copy()
        c.tuples.append((9, "q"))
        assert len(r) == 4


class TestUnary:
    def test_project_dedup(self, r):
        p = r.project(["a"])
        assert sorted(p.tuples) == [(1,), (2,)]

    def test_project_no_dedup(self, r):
        p = r.project(["a"], dedup=False)
        assert len(p) == 4

    def test_project_reorders(self, r):
        p = r.project(["b", "a"], dedup=False)
        assert p.tuples[0] == ("x", 1)

    def test_select_predicate(self, r):
        out = r.select(lambda row: row[0] == 2)
        assert len(out) == 2

    def test_select_compare_all_ops(self):
        rel = Relation(["a"], [(i,) for i in range(5)])
        assert len(rel.select_compare("a", "=", 2)) == 1
        assert len(rel.select_compare("a", "<>", 2)) == 4
        assert len(rel.select_compare("a", "<", 2)) == 2
        assert len(rel.select_compare("a", "<=", 2)) == 3
        assert len(rel.select_compare("a", ">", 2)) == 2
        assert len(rel.select_compare("a", ">=", 2)) == 3
        with pytest.raises(SchemaError):
            rel.select_compare("a", "~", 2)

    def test_select_attr_eq(self):
        rel = Relation(["a", "b"], [(1, 1), (1, 2)])
        assert rel.select_attr_eq("a", "b").tuples == [(1, 1)]

    def test_rename(self, r):
        renamed = r.rename({"a": "x"})
        assert renamed.attributes == ("x", "b")
        assert renamed.tuples == r.tuples

    def test_distinct(self, r):
        assert len(r.distinct()) == 3

    def test_sort_multi_key(self):
        rel = Relation(["a", "b"], [(1, 2), (2, 1), (1, 1)])
        out = rel.sort_by([("a", False), ("b", True)])
        assert out.tuples == [(1, 2), (1, 1), (2, 1)]

    def test_limit(self, r):
        assert len(r.limit(2)) == 2


class TestJoin:
    def test_natural_join(self, r, s):
        j = r.natural_join(s)
        assert set(j.attributes) == {"a", "b", "c"}
        # (1,x) appears twice, matching (x,10) → 2 rows;
        # (2,y) matches (y,20) and (y,21) → 2 rows; (2,z) matches nothing.
        assert len(j) == 4

    def test_join_no_shared_is_cross(self):
        r1 = Relation(["a"], [(1,), (2,)])
        r2 = Relation(["b"], [(3,), (4,), (5,)])
        assert len(r1.natural_join(r2)) == 6

    def test_join_empty_side(self, r):
        empty = Relation(["b", "c"], [])
        assert len(r.natural_join(empty)) == 0

    def test_join_work_charged(self, r, s):
        meter = WorkMeter()
        r.natural_join(s, meter=meter)
        assert meter.total > 0
        assert "join-out" in meter.by_category

    def test_join_budget_aborts(self):
        big1 = Relation(["a"], [(i,) for i in range(100)])
        big2 = Relation(["b"], [(i,) for i in range(100)])
        meter = WorkMeter(budget=500)
        with pytest.raises(WorkBudgetExceeded):
            big1.natural_join(big2, meter=meter)  # 10 000-row cross product

    def test_semijoin(self, r, s):
        out = r.semijoin(s)
        assert sorted(set(out.tuples)) == [(1, "x"), (2, "y")]

    def test_semijoin_no_shared_nonempty_other(self, r):
        other = Relation(["zz"], [(1,)])
        assert len(r.semijoin(other)) == len(r)

    def test_semijoin_no_shared_empty_other(self, r):
        other = Relation(["zz"], [])
        assert len(r.semijoin(other)) == 0

    def test_union(self):
        r1 = Relation(["a", "b"], [(1, 2)])
        r2 = Relation(["b", "a"], [(4, 3)])
        u = r1.union(r2)
        assert (3, 4) in u.tuples
        assert len(u) == 2

    def test_union_schema_mismatch(self, r, s):
        with pytest.raises(SchemaError):
            r.union(s)


class TestAggregate:
    def test_group_by_count_sum(self):
        rel = Relation(["g", "v"], [("a", 1), ("a", 2), ("b", 5)])
        out = rel.group_aggregate(
            ["g"], [("count", None, "n"), ("sum", "v", "total")]
        )
        assert sorted(out.tuples) == [("a", 2, 3), ("b", 1, 5)]

    def test_min_max_avg(self):
        rel = Relation(["v"], [(1,), (2,), (3,)])
        out = rel.group_aggregate(
            [], [("min", "v", "lo"), ("max", "v", "hi"), ("avg", "v", "mean")]
        )
        assert out.tuples == [(1, 3, 2.0)]

    def test_global_aggregate_on_empty(self):
        rel = Relation(["v"], [])
        out = rel.group_aggregate([], [("count", None, "n"), ("sum", "v", "s")])
        assert out.tuples == [(0, None)]

    def test_unknown_function_rejected(self):
        rel = Relation(["v"], [(1,)])
        with pytest.raises(SchemaError):
            rel.group_aggregate([], [("median", "v", "m")])

    def test_sum_requires_attribute(self):
        rel = Relation(["v"], [(1,)])
        with pytest.raises(SchemaError):
            rel.group_aggregate([], [("sum", None, "s")])

    def test_float_sum_is_order_independent(self):
        # Different plans feed groups in different row orders; SUM must not
        # depend on it (math.fsum under the hood).
        values = [0.1, 1e16, -1e16, 0.2, 0.3, 7.7, -3.3]
        rel1 = Relation(["v"], [(v,) for v in values])
        rel2 = Relation(["v"], [(v,) for v in reversed(values)])
        s1 = rel1.group_aggregate([], [("sum", "v", "s")]).tuples[0][0]
        s2 = rel2.group_aggregate([], [("sum", "v", "s")]).tuples[0][0]
        assert s1 == s2

    def test_integer_sum_stays_exact_int(self):
        rel = Relation(["v"], [(10**18,), (1,)])
        total = rel.group_aggregate([], [("sum", "v", "s")]).tuples[0][0]
        assert total == 10**18 + 1 and isinstance(total, int)

"""Tests for SQL post-processing (step 4 of the paper's pipeline)."""

import pytest

from repro.engine.postprocess import apply_sql_semantics
from repro.errors import QueryError
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import Relation

SCHEMA = {"emp": ["dept", "salary", "bonus"]}


def make_answer(tr, rows):
    """An answer relation over the translation's output variables."""
    return Relation(list(tr.query.output), rows)


def translate(sql):
    return sql_to_conjunctive(parse_sql(sql), SCHEMA)


class TestPlainSelect:
    def test_column_selection_and_aliasing(self):
        tr = translate("SELECT dept AS d, salary FROM emp")
        answer = make_answer(tr, [("eng", 100), ("sales", 200)])
        out = apply_sql_semantics(answer, tr)
        assert out.attributes == ("d", "salary")

    def test_arithmetic(self):
        tr = translate("SELECT salary * 2 AS dbl FROM emp")
        answer = make_answer(tr, [(100,), (150,)])
        out = apply_sql_semantics(answer, tr)
        assert sorted(out.tuples) == [(200,), (300,)]

    def test_star_passthrough(self):
        tr = translate("SELECT * FROM emp")
        answer = make_answer(tr, [("eng", 1, 2)])
        out = apply_sql_semantics(answer, tr)
        assert len(out.attributes) == 3

    def test_duplicate_output_names_deduped(self):
        tr = translate("SELECT salary, salary FROM emp")
        answer = make_answer(tr, [(100,)])
        out = apply_sql_semantics(answer, tr)
        assert len(set(out.attributes)) == 2


class TestAggregates:
    def test_sum_of_expression(self):
        tr = translate(
            "SELECT dept, sum(salary * (1 - bonus)) AS rev FROM emp GROUP BY dept"
        )
        answer = make_answer(tr, [("eng", 100, 0.1), ("eng", 200, 0.5)])
        out = apply_sql_semantics(answer, tr)
        assert out.tuples == [("eng", pytest.approx(190.0))]

    def test_global_aggregate(self):
        tr = translate("SELECT sum(salary) AS total FROM emp")
        answer = make_answer(tr, [(100,), (200,)])
        out = apply_sql_semantics(answer, tr)
        assert out.tuples == [(300,)]

    def test_selected_column_must_be_grouped(self):
        tr = translate("SELECT dept, sum(salary) FROM emp GROUP BY bonus")
        answer = Relation(list(tr.query.output), [])
        with pytest.raises(QueryError, match="GROUP BY"):
            apply_sql_semantics(answer, tr)

    def test_complex_select_item_rejected(self):
        tr = translate("SELECT salary + 1, sum(bonus) FROM emp GROUP BY salary")
        answer = Relation(list(tr.query.output), [])
        with pytest.raises(QueryError):
            apply_sql_semantics(answer, tr)

    def test_multiple_aggregates(self):
        tr = translate(
            "SELECT dept, min(salary) AS lo, max(salary) AS hi FROM emp GROUP BY dept"
        )
        answer = make_answer(tr, [("eng", 100), ("eng", 300), ("sales", 50)])
        out = apply_sql_semantics(answer, tr)
        rows = {r[0]: r[1:] for r in out.tuples}
        assert rows["eng"] == (100, 300)
        assert rows["sales"] == (50, 50)


class TestOrderLimit:
    def test_order_by_output_alias(self):
        tr = translate("SELECT dept, sum(salary) AS total FROM emp GROUP BY dept ORDER BY total DESC")
        answer = make_answer(tr, [("a", 10), ("b", 30), ("c", 20)])
        out = apply_sql_semantics(answer, tr)
        assert [r[1] for r in out.tuples] == [30, 20, 10]

    def test_order_by_column(self):
        tr = translate("SELECT dept, salary FROM emp ORDER BY salary")
        answer = make_answer(tr, [("a", 3), ("b", 1), ("c", 2)])
        out = apply_sql_semantics(answer, tr)
        assert [r[1] for r in out.tuples] == [1, 2, 3]

    def test_limit(self):
        tr = translate("SELECT salary FROM emp ORDER BY salary LIMIT 2")
        answer = make_answer(tr, [(3,), (1,), (2,)])
        out = apply_sql_semantics(answer, tr)
        assert out.tuples == [(1,), (2,)]

    def test_distinct(self):
        tr = translate("SELECT DISTINCT dept FROM emp")
        answer = make_answer(tr, [("a",), ("a",), ("b",)])
        out = apply_sql_semantics(answer, tr)
        assert len(out) == 2

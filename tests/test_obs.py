"""Tests for the observability subsystem: tracing, metrics, EXPLAIN ANALYZE."""

import io
import json
import threading

import pytest

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.core.optimizer import HybridOptimizer
from repro.metering import WorkMeter, split_phases
from repro.obs.explain import estimation_error, stats_by_node
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)
from repro.service.metrics import LatencyStat, ServiceMetrics
from repro.service.server import QueryService
from tests.conftest import CHAIN_SQL


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completion order: inner closes first.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_work_unit_delta(self):
        tracer = Tracer()
        meter = WorkMeter()
        with tracer.span("work", meter=meter):
            meter.charge(7, "join")
        assert tracer.spans("work")[0].work_units == 7

    def test_tags_and_chaining(self):
        tracer = Tracer()
        with tracer.span("t", k=4) as span:
            span.tag(rows_out=3).tag(algorithm="hash")
        record = tracer.spans()[0].to_record()
        assert record["tags"] == {"k": 4, "rows_out": 3, "algorithm": "hash"}

    def test_error_tagged(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        assert tracer.spans()[0].tags["error"] == "ValueError"

    def test_jsonl_export_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", meter=None, n=1):
            pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 1
        record = json.loads(path.read_text().strip())
        assert record["name"] == "a"
        assert record["tags"] == {"n": 1}
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 1
        assert json.loads(buffer.getvalue()) == record

    def test_validate_clean(self):
        tracer = Tracer()
        with tracer.span("ok"):
            pass
        assert tracer.validate() == []

    def test_validate_reports_open_span(self):
        tracer = Tracer()
        span = tracer.span("stuck")
        span.__enter__()
        problems = tracer.validate()
        assert any("still open" in p for p in problems)
        span.__exit__(None, None, None)
        assert tracer.validate() == []

    def test_retention_cap(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 3

    def test_null_tracer_is_default_and_inert(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", meter=WorkMeter(), k=1) as span:
            assert span.tag(x=1) is span
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.validate() == []
        assert NULL_TRACER.export_jsonl(io.StringIO()) == 0

    def test_tracing_context_installs_and_restores(self):
        assert isinstance(current_tracer(), NullTracer)
        with tracing() as tracer:
            assert current_tracer() is tracer
            with tracing() as nested:
                assert current_tracer() is nested
            assert current_tracer() is tracer
        assert isinstance(current_tracer(), NullTracer)

    def test_set_tracer_none_disables(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(None)
        assert current_tracer() is NULL_TRACER

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracer.span(f"root-{name}"):
                barrier.wait(timeout=5)
                with tracer.span(f"child-{name}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"w{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert tracer.validate() == []
        spans = {s.name: s for s in tracer.spans()}
        for i in range(2):
            assert spans[f"child-{i}"].parent_id == spans[f"root-{i}"].span_id
            assert spans[f"root-{i}"].parent_id is None


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_buckets_and_summary(self):
        histogram = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"le_1": 1, "le_10": 2, "le_100": 3}
        assert snap["min"] == 0.5
        assert snap["max"] == 500
        assert snap["mean"] == pytest.approx(138.875)

    def test_histogram_empty_snapshot_has_no_inf(self):
        snap = Histogram("h", buckets=(1,)).snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        json.dumps(snap)  # must be JSON-safe

    def test_histogram_merge(self):
        a = Histogram("a", buckets=(1, 10))
        b = Histogram("b", buckets=(1, 10))
        a.observe(0.5)
        b.observe(20)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == 0.5 and snap["max"] == 20
        with pytest.raises(ValueError):
            a.merge(Histogram("c", buckets=(2,)))

    def test_registration_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        assert registry.names() == ["a", "b"]
        assert registry.snapshot() == {"a": 1, "b": 2}
        registry.unregister("a")
        assert registry.names() == ["b"]

    def test_render_text(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", help="All requests").inc(3)
        registry.histogram("latency", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert "# HELP requests_total All requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_count 1" in text

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


# ---------------------------------------------------------------------------
# LatencyStat / ServiceMetrics
# ---------------------------------------------------------------------------


class TestLatencyStat:
    def test_minimum_never_inf_in_snapshot(self):
        stat = LatencyStat()
        assert stat.minimum is None
        snap = stat.snapshot()
        assert snap["min"] == 0.0
        # The historic bug: min serialized as Infinity in JSON exports.
        assert "Infinity" not in json.dumps(snap)

    def test_observe_and_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.observe(2.0)
        b.observe(0.5)
        b.observe(4.0)
        a.merge(b)
        assert a.count == 3
        assert a.minimum == 0.5
        assert a.maximum == 4.0
        assert a.mean == pytest.approx(6.5 / 3)

    def test_merge_empty_keeps_minimum_none(self):
        a, b = LatencyStat(), LatencyStat()
        a.merge(b)
        assert a.minimum is None
        a.observe(1.0)
        a.merge(LatencyStat())
        assert a.minimum == 1.0


class TestServiceMetrics:
    def test_snapshot_shape_preserved(self):
        metrics = ServiceMetrics()
        metrics.record_query(finished=True, work=100, seconds=0.01)
        metrics.record_plan(cache_hit=False, units=5, seconds=0.001)
        snap = metrics.snapshot(cache={"capacity": 8})
        assert snap["queries"]["submitted"] == 1
        assert snap["queries"]["work_units"] == 100
        assert snap["latency_seconds"]["count"] == 1
        assert snap["planning"]["built"] == 1
        assert snap["planning"]["work_units"] == 5
        assert snap["cache"]["capacity"] == 8
        json.dumps(snap)

    def test_instances_do_not_share_instruments(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.record_query(finished=True, work=1, seconds=0.0)
        assert b.queries == 0

    def test_render_text_exposes_service_instruments(self):
        metrics = ServiceMetrics()
        metrics.record_query(finished=False, work=2, seconds=0.5)
        text = metrics.render_text()
        assert "service_queries_submitted_total 1" in text
        assert "service_queries_dnf_total 1" in text
        assert "service_latency_seconds_count 1" in text


# ---------------------------------------------------------------------------
# Phase split
# ---------------------------------------------------------------------------


class TestSplitPhases:
    def test_split(self):
        phases = split_phases({"plan": 5, "scan": 10, "join": 20, "total": 35})
        assert phases == {"decompose": 5, "optimize": 0, "execute": 30}

    def test_empty(self):
        assert split_phases({}) == {"decompose": 0, "optimize": 0, "execute": 0}


# ---------------------------------------------------------------------------
# End-to-end: zero-cost guarantee, pool nesting, EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestZeroCostWhenDisabled:
    def test_identical_work_with_and_without_tracing(self, chain_db):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        baseline = dbms.run_sql(CHAIN_SQL)
        with tracing() as tracer:
            traced = dbms.run_sql(CHAIN_SQL)
        assert traced.work == baseline.work
        assert traced.work_breakdown == baseline.work_breakdown
        assert len(tracer.spans()) > 0
        again = dbms.run_sql(CHAIN_SQL)  # tracer uninstalled again
        assert again.work == baseline.work

    def test_identical_qhd_work_with_and_without_tracing(self, chain_db):
        plan = HybridOptimizer(chain_db, max_width=2).optimize(CHAIN_SQL)
        baseline = plan.execute()
        traced = plan.execute(tracer=Tracer())
        assert traced.work == baseline.work
        assert traced.work_breakdown == baseline.work_breakdown


class TestPoolTracing:
    def test_span_nesting_under_worker_pool(self, chain_db):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=8
        ) as service:
            with tracing() as tracer:
                results = service.run_all([CHAIN_SQL] * 16)
        assert all(r.finished for r in results)
        assert tracer.validate() == []
        spans = tracer.spans()
        assert len(spans) >= 32  # ≥ one plan + one execute span per query
        assert len(tracer.spans("serve.execute")) == 16
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                # Parent-child pairs never cross threads.
                assert by_id[span.parent_id].thread == span.thread
        for child in tracer.spans("qhd.node"):
            assert child.parent_id is not None

    def test_traced_pool_run_charges_identical_work(self, chain_db):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=4
        ) as service:
            plain = service.execute(CHAIN_SQL)
            with tracing():
                traced = service.execute(CHAIN_SQL)
        assert traced.work == plain.work


class TestExplainAnalyze:
    @pytest.fixture(scope="class")
    def tpch(self):
        from repro.workloads.tpch import generate_tpch_database
        from repro.workloads.tpch_queries import query_q5

        return (
            generate_tpch_database(size_mb=20, seed=0, analyze=True),
            query_q5(),
        )

    def test_engine_row_counts_match_actual_result(self, tpch):
        database, sql = tpch
        dbms = SimulatedDBMS(database, COMMDB_PROFILE)
        analyzed = dbms.explain_analyze(sql)
        result = dbms.run_sql(sql)
        assert analyzed.result.finished
        assert analyzed.result.work == result.work
        assert analyzed.result.relation.same_content(result.relation)
        assert f"answer rows: {len(result.relation)}" in analyzed.text
        # Root operator's actual row count equals the conjunctive answer's
        # pre-projection cardinality recorded in the root exec span.
        root_stats = analyzed.node_stats[id(analyzed.plan)]
        assert root_stats.rows is not None
        assert "actual=" in analyzed.text
        assert "work=" in analyzed.text

    def test_estimation_error_annotations(self, tpch):
        database, sql = tpch
        dbms = SimulatedDBMS(database, COMMDB_PROFILE)
        text = dbms.explain_analyze(sql).text
        assert "rows≈" in text
        assert "planner: " in text

    def test_qhd_explain_analyze(self, tpch):
        database, sql = tpch
        plan = HybridOptimizer(database, max_width=3).optimize(sql)
        executed = plan.execute()
        text = plan.explain(analyze=True)
        assert "λ=" in text
        assert f"total work: {executed.work}" in text
        assert f"answer rows: {len(executed.relation)}" in text
        # Plain explain is unchanged.
        assert plan.explain() == plan.decomposition.render()

    def test_work_budget_dnf_explain(self, tpch):
        database, sql = tpch
        dbms = SimulatedDBMS(database, COMMDB_PROFILE)
        analyzed = dbms.explain_analyze(sql, work_budget=10)
        assert not analyzed.result.finished
        assert "DNF" in analyzed.text


class TestEstimationError:
    def test_markers(self):
        assert estimation_error(None, 5) == "?"
        assert estimation_error(100, 100) == "✓"
        assert estimation_error(100, 95) == "✓"
        assert estimation_error(100, 10) == "×10.0 over"
        assert estimation_error(10, 100) == "×10.0 under"
        assert estimation_error(0, 0) == "✓"

    def test_stats_by_node_filters_names(self):
        tracer = Tracer()
        with tracer.span("exec.scan", node=1, est_rows=10) as span:
            span.tag(rows_out=8)
        with tracer.span("other", node=2):
            pass
        stats = stats_by_node(tracer.spans())
        assert set(stats) == {1}
        assert stats[1].rows == 8
        assert stats[1].est_rows == 10

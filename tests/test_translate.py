"""Tests for SQL → conjunctive-query translation (§2 of the paper)."""

import pytest

from repro.errors import QueryError
from repro.query import ast
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive

SCHEMA = {
    "customer": ["c_custkey", "c_nationkey"],
    "orders": ["o_orderkey", "o_custkey", "o_orderdate"],
    "lineitem": ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    "supplier": ["s_suppkey", "s_nationkey"],
    "nation": ["n_nationkey", "n_name", "n_regionkey"],
    "region": ["r_regionkey", "r_name"],
    "t": ["a", "b", "c"],
    "s": ["a", "d"],
}


def translate(sql, name="Q"):
    return sql_to_conjunctive(parse_sql(sql), SCHEMA, name=name)


class TestEquivalenceClasses:
    def test_join_condition_merges_columns(self):
        tr = translate("SELECT t.b FROM t, s WHERE t.a = s.a")
        variable = tr.variable_for("t", "a")
        assert variable is not None
        assert tr.variable_bindings[variable] == {"t": "a", "s": "a"}

    def test_transitive_merge(self):
        tr = translate(
            "SELECT c_custkey FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
        )
        v = tr.variable_for("customer", "c_custkey")
        assert tr.variable_bindings[v] == {"customer": "c_custkey", "orders": "o_custkey"}

    def test_select_only_attribute_becomes_variable(self):
        tr = translate("SELECT t.c FROM t, s WHERE t.a = s.a")
        assert tr.variable_for("t", "c") is not None

    def test_unmentioned_attribute_is_not_a_variable(self):
        tr = translate("SELECT t.c FROM t, s WHERE t.a = s.a")
        assert tr.variable_for("t", "b") is None
        assert tr.variable_for("s", "d") is None

    def test_atom_arity_is_reduced(self):
        # The paper: atoms may have smaller arity than in the schema.
        tr = translate("SELECT t.c FROM t, s WHERE t.a = s.a")
        atom = tr.query.atom("t")
        assert len(atom.terms) == 2  # a (joined) + c (selected)


class TestFilters:
    def test_constant_filters_attached_to_atom(self):
        tr = translate("SELECT t.b FROM t WHERE t.a = 1 AND t.c > 2")
        assert len(tr.atom_filters["t"]) == 2

    def test_filter_attribute_still_a_variable(self):
        tr = translate("SELECT t.b FROM t WHERE t.a = 1")
        assert tr.variable_for("t", "a") is not None

    def test_cross_relation_inequality_rejected(self):
        with pytest.raises(QueryError, match="non-equality"):
            translate("SELECT t.b FROM t, s WHERE t.a > s.a")

    def test_intra_atom_equality(self):
        tr = translate("SELECT t.c FROM t WHERE t.a = t.b")
        assert tr.intra_atom_equalities["t"] == (("a", "b"),)
        # Only one variable carries the merged class for this atom.
        atom = tr.query.atom("t")
        v = tr.variable_for("t", "a")
        assert list(atom.terms).count(v) == 1


class TestOutput:
    def test_select_and_group_by_are_output(self):
        tr = translate(
            "SELECT t.b, count(*) FROM t, s WHERE t.a = s.a GROUP BY t.b, t.c"
        )
        out = tr.query.output
        assert tr.variable_for("t", "b") in out
        assert tr.variable_for("t", "c") in out

    def test_aggregate_argument_variables_are_output(self):
        # Definition: out(Q) includes all variables in aggregates.
        tr = translate("SELECT sum(t.b) FROM t, s WHERE t.a = s.a")
        assert tr.variable_for("t", "b") in tr.query.output

    def test_output_order_follows_select(self):
        tr = translate("SELECT t.c, t.b FROM t")
        assert tr.query.output == (
            tr.variable_for("t", "c"),
            tr.variable_for("t", "b"),
        )

    def test_star_select_covers_all_columns(self):
        tr = translate("SELECT * FROM s")
        assert set(tr.query.output) == {
            tr.variable_for("s", "a"),
            tr.variable_for("s", "d"),
        }


class TestResolution:
    def test_unqualified_unique_column(self):
        tr = translate("SELECT c_custkey FROM customer")
        assert tr.variable_for("customer", "c_custkey") is not None

    def test_ambiguous_column_rejected(self):
        with pytest.raises(QueryError, match="ambiguous"):
            translate("SELECT a FROM t, s")

    def test_unknown_column_rejected(self):
        with pytest.raises(QueryError, match="not found"):
            translate("SELECT zzz FROM t")

    def test_unknown_relation_rejected(self):
        with pytest.raises(QueryError, match="schema"):
            translate("SELECT a FROM missing_table")

    def test_unknown_alias_rejected(self):
        with pytest.raises(QueryError, match="alias"):
            translate("SELECT q.a FROM t")

    def test_wrong_attribute_for_alias(self):
        with pytest.raises(QueryError):
            translate("SELECT t.d FROM t")

    def test_resolve_variable_helper(self):
        tr = translate("SELECT t.b FROM t, s WHERE t.a = s.a")
        v = tr.resolve_variable(ast.ColumnRef("s", "a"))
        assert v == tr.variable_for("t", "a")

    def test_resolve_variable_unknown(self):
        tr = translate("SELECT t.b FROM t")
        with pytest.raises(QueryError):
            tr.resolve_variable(ast.ColumnRef("t", "c"))


class TestSelfJoins:
    def test_same_relation_twice_distinct_atoms(self):
        tr = translate(
            "SELECT n1.n_name FROM nation n1, nation n2 "
            "WHERE n1.n_regionkey = n2.n_nationkey"
        )
        assert len(tr.query.atoms) == 2
        assert {a.name for a in tr.query.atoms} == {"n1", "n2"}
        assert all(a.relation == "nation" for a in tr.query.atoms)


class TestQ5Structure:
    def test_q5_matches_paper_example_1(self):
        from repro.workloads.tpch_queries import query_q5

        tr = sql_to_conjunctive(parse_sql(query_q5()), SCHEMA, name="Q5")
        q = tr.query
        # Six atoms, one per relation (Example 1 of the paper).
        assert len(q.atoms) == 6
        # The hypergraph is cyclic.
        from repro.hypergraph import is_acyclic

        assert not is_acyclic(q.hypergraph())
        # nationkey links customer, supplier and nation (one variable).
        v = tr.variable_for("customer", "c_nationkey")
        assert set(tr.variable_bindings[v]) == {"customer", "supplier", "nation"}
        # Filters land on orders (dates) and region (name).
        assert len(tr.atom_filters["orders"]) == 2
        assert len(tr.atom_filters["region"]) == 1

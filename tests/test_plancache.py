"""Tests for the thread-safe LRU+TTL structural plan cache."""

import threading

import pytest

from repro.service.fingerprint import QueryFingerprint
from repro.service.plancache import PlanCache


def make_fp(name: str, text: str = "") -> QueryFingerprint:
    return QueryFingerprint(
        key=name, text=text or f"text-{name}", var_map={}, atom_map={}
    )


class FakeTree:
    """Stands in for a Hypertree; the cache never inspects entries."""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBasics:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        fp = make_fp("a")
        assert cache.lookup(fp, 0) is None
        tree = FakeTree()
        cache.store(fp, tree, 0)
        entry = cache.lookup(fp, 0)
        assert entry is not None and entry.tree is tree
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_failure_entry(self):
        cache = PlanCache(capacity=4)
        fp = make_fp("a")
        cache.store(fp, None, 0)
        entry = cache.lookup(fp, 0)
        assert entry is not None and entry.failure

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        fp = make_fp("a")
        cache.store(fp, FakeTree(), 0)
        assert cache.lookup(fp, 0) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)
        with pytest.raises(ValueError):
            PlanCache(ttl_seconds=0)


class TestLRU:
    def test_least_recent_evicted(self):
        cache = PlanCache(capacity=2)
        a, b, c = make_fp("a"), make_fp("b"), make_fp("c")
        cache.store(a, FakeTree(), 0)
        cache.store(b, FakeTree(), 0)
        cache.lookup(a, 0)  # refresh a; b is now least recent
        cache.store(c, FakeTree(), 0)
        assert cache.lookup(a, 0) is not None
        assert cache.lookup(b, 0) is None
        assert cache.lookup(c, 0) is not None
        assert cache.stats.evictions_lru == 1


class TestTTL:
    def test_lazy_expiry(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        fp = make_fp("a")
        cache.store(fp, FakeTree(), 0)
        clock.now = 9.0
        assert cache.lookup(fp, 0) is not None
        clock.now = 11.0
        assert cache.lookup(fp, 0) is None
        assert cache.stats.evictions_ttl == 1

    def test_sweep(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.store(make_fp("a"), FakeTree(), 0)
        clock.now = 5.0
        cache.store(make_fp("b"), FakeTree(), 0)
        clock.now = 12.0
        assert cache.sweep() == 1  # only "a" expired
        assert len(cache) == 1


class TestStatsVersion:
    def test_stale_version_invalidated(self):
        cache = PlanCache(capacity=4)
        fp = make_fp("a")
        cache.store(fp, FakeTree(), stats_version=1)
        assert cache.lookup(fp, stats_version=1) is not None
        assert cache.lookup(fp, stats_version=2) is None
        assert cache.stats.invalidations == 1
        # the stale entry is gone, not resurrected by the old version
        assert cache.lookup(fp, stats_version=1) is None


class TestCollisions:
    def test_digest_collision_is_miss_not_eviction(self):
        cache = PlanCache(capacity=4)
        stored = make_fp("samekey", text="template-one")
        other = make_fp("samekey", text="template-two")
        cache.store(stored, FakeTree(), 0)
        assert cache.lookup(other, 0) is None  # never serve the wrong plan
        assert cache.lookup(stored, 0) is not None  # original still live


class TestSnapshotAndConcurrency:
    def test_snapshot_shape(self):
        cache = PlanCache(capacity=4)
        fp = make_fp("a")
        cache.store(fp, FakeTree(), 0)
        cache.lookup(fp, 0)
        snap = cache.snapshot()
        assert snap["size"] == 1 and snap["capacity"] == 4
        assert snap["hits"] == 1 and snap["hit_rate"] == 1.0

    def test_build_lock_single_instance_per_key(self):
        cache = PlanCache(capacity=4)
        assert cache.build_lock("k") is cache.build_lock("k")
        assert cache.build_lock("k") is not cache.build_lock("other")
        cache.store(make_fp("k"), FakeTree(), 0)  # completes the build
        # a fresh build cycle gets a fresh lock object
        assert isinstance(cache.build_lock("k"), type(threading.Lock()))

    def test_concurrent_store_lookup(self):
        cache = PlanCache(capacity=16)
        errors = []

        def worker(tag: int) -> None:
            try:
                for i in range(200):
                    fp = make_fp(f"{tag}-{i % 8}")
                    cache.store(fp, FakeTree(), 0)
                    assert cache.lookup(fp, 0) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16

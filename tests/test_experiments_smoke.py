"""Smoke tests for the figure experiments (tiny budgets, quick scale).

The full shape assertions live in ``benchmarks/``; these just pin that the
sweep runners produce complete, internally consistent series so a
regression cannot hide until the (slower) benchmark run.
"""

import pytest

from repro.bench.experiments import run_fig7, run_fig8, run_fig9


@pytest.mark.parametrize("variant", ["a", "b"])
def test_fig7_smoke(variant):
    # Small budget: big points may DNF, which is fine — the record shape
    # and answer consistency are what this test pins.
    result = run_fig7(variant, scale="quick", budget=200_000)
    assert result.consistent_answers()
    # 3 sweeps × 2 systems × 5 atom counts.
    assert len(result.records) == 30
    assert len(result.systems()) == 6
    for record in result.records:
        assert record.work >= 0
        assert record.extra.get("group")


def test_fig8_smoke():
    result = run_fig8("q5", scale="quick", budget=150_000)
    assert result.consistent_answers()
    assert result.systems() == ["commdb+stats", "commdb-no-opt", "q-hd"]
    assert result.points() == [200, 600, 1000]
    qhd = result.series("q-hd")
    assert all("width" in record.extra for record in qhd)
    # Work grows monotonically with database size for the q-HD series.
    finished = [r.work for r in qhd if r.finished]
    assert finished == sorted(finished)


def test_fig9_smoke():
    result = run_fig9(scale="quick", budget=300_000)
    assert result.consistent_answers()
    assert len(result.systems()) == 4
    for kind in ("acyclic", "chain"):
        series = result.series(f"postgres+q-hd-{kind}")
        assert [r.point for r in series] == [2, 4, 6, 8, 10]

"""Tests for the normal-form checker."""

import pytest

from repro.hypergraph import Hypergraph, cycle_hypergraph, line_hypergraph
from repro.core.costkdecomp import cost_k_decomp
from repro.core.costmodel import DecompositionCostModel
from repro.core.detkdecomp import det_k_decomp
from repro.core.hypertree import Hypertree, make_node
from repro.core.normalform import is_normal_form, normal_form_violations
from repro.query.builder import ConjunctiveQueryBuilder


def chain_query(n):
    builder = ConjunctiveQueryBuilder("chain")
    for i in range(n):
        builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % n}")
    return builder.output("V0").build()


class TestConstructionsAreNF:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_det_k_decomp_on_cycles(self, n):
        tree = det_k_decomp(cycle_hypergraph(n), 2)
        assert is_normal_form(tree), normal_form_violations(tree)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_det_k_decomp_on_lines(self, n):
        tree = det_k_decomp(line_hypergraph(n), 1)
        assert is_normal_form(tree), normal_form_violations(tree)

    def test_cost_k_decomp_is_nf(self):
        q = chain_query(6)
        model = DecompositionCostModel.uniform(q)
        tree, _cost = cost_k_decomp(q.hypergraph(), 2, model)
        assert is_normal_form(tree), normal_form_violations(tree)

    def test_rooted_search_is_nf(self):
        q = chain_query(6)
        model = DecompositionCostModel.uniform(q)
        tree, _ = cost_k_decomp(
            q.hypergraph(), 2, model, required_root_cover={"V0", "V1"}
        )
        assert is_normal_form(tree)


class TestViolations:
    @pytest.fixture()
    def triangle(self):
        return Hypergraph.from_dict(
            {"ab": ["A", "B"], "bc": ["B", "C"], "ca": ["C", "A"]}
        )

    def test_useless_child_flagged(self, triangle):
        # Child that introduces no new variables violates condition 1.
        child = make_node(["A", "B"], ["ab"])
        root = make_node(["A", "B", "C"], ["ab", "bc"], children=[child])
        tree = Hypertree(root, triangle)
        violations = normal_form_violations(tree)
        assert any("no new variables" in v for v in violations)

    def test_loose_chi_flagged(self, triangle):
        # χ(c) smaller than var(λ(c)) ∩ (V_c ∪ χ(p)) breaks condition 2.
        child = make_node(["C"], ["bc", "ca"])
        root = make_node(["A", "B"], ["ab"], children=[child])
        tree = Hypertree(root, triangle)
        violations = normal_form_violations(tree)
        assert any("condition 2" in v for v in violations)

    def test_no_progress_flagged(self):
        hg = Hypergraph.from_dict({"ab": ["A", "B"], "cd": ["C", "D"], "bc": ["B", "C"]})
        # Child whose λ covers only already-seen variables.
        grandchild = make_node(["C", "D"], ["cd"])
        child = make_node(["B", "C"], ["bc"], children=[grandchild])
        root = make_node(["A", "B"], ["ab"], children=[child])
        tree = Hypertree(root, hg)
        assert is_normal_form(tree)  # this one is actually fine
        # Now a child that repeats the parent's λ without touching V_c:
        bad_child = make_node(["A", "B"], ["ab"])
        root2 = make_node(["A", "B"], ["ab"], children=[bad_child])
        tree2 = Hypertree(root2, hg)
        violations = normal_form_violations(tree2)
        assert violations  # no-new-variables (and thus non-NF)

"""Tests for hash indexes and index-based operators."""

import pytest

from repro.errors import SchemaError
from repro.metering import WorkMeter
from repro.relational import Relation
from repro.relational.indexes import (
    HashIndex,
    IndexCatalog,
    index_nested_loop_join,
    indexed_semijoin,
)


@pytest.fixture()
def build():
    return Relation(
        ["k", "v"], [(1, "a"), (1, "b"), (2, "c"), (3, "d")], name="build"
    )


@pytest.fixture()
def probe():
    return Relation(["x", "k"], [(10, 1), (20, 2), (30, 9)], name="probe")


class TestHashIndex:
    def test_lookup(self, build):
        index = HashIndex(build, ["k"])
        assert len(index.lookup((1,))) == 2
        assert index.lookup((9,)) == []
        assert len(index) == 3

    def test_contains(self, build):
        index = HashIndex(build, ["k"])
        assert index.contains((2,))
        assert not index.contains((9,))

    def test_composite_key(self, build):
        index = HashIndex(build, ["k", "v"])
        assert len(index.lookup((1, "a"))) == 1
        assert index.lookup((1, "zzz")) == []

    def test_empty_attributes_rejected(self, build):
        with pytest.raises(SchemaError):
            HashIndex(build, [])

    def test_unknown_attribute_rejected(self, build):
        with pytest.raises(SchemaError):
            HashIndex(build, ["nope"])

    def test_build_cost(self, build):
        assert HashIndex(build, ["k"]).build_cost == 4

    def test_probe_charges_meter(self, build):
        index = HashIndex(build, ["k"])
        meter = WorkMeter()
        index.lookup((1,), meter)
        assert meter.by_category["index-probe"] == 1


class TestIndexJoin:
    def test_matches_hash_join(self, build, probe):
        index = HashIndex(build, ["k"])
        via_index = index_nested_loop_join(probe, index)
        via_hash = probe.natural_join(build)
        assert via_index.same_content(via_hash)

    def test_missing_probe_attribute(self, build):
        index = HashIndex(build, ["k"])
        other = Relation(["z"], [(1,)])
        with pytest.raises(SchemaError):
            index_nested_loop_join(other, index)

    def test_residual_shared_attributes(self):
        build = Relation(["k", "v"], [(1, "a"), (1, "b")], name="b")
        probe = Relation(["k", "v"], [(1, "a"), (1, "z")], name="p")
        index = HashIndex(build, ["k"])
        joined = index_nested_loop_join(probe, index)
        # Residual equality on v must filter (1, "z").
        assert joined.same_content(probe.natural_join(build))

    def test_work_accounting(self, build, probe):
        index = HashIndex(build, ["k"])
        meter = WorkMeter()
        index_nested_loop_join(probe, index, meter)
        assert meter.by_category["inl-probe"] == 3


class TestIndexedSemijoin:
    def test_matches_plain_semijoin(self, build, probe):
        index = HashIndex(build, ["k"])
        via_index = indexed_semijoin(probe, index)
        assert via_index.same_content(probe.semijoin(build))

    def test_missing_attribute(self, build):
        index = HashIndex(build, ["k"])
        with pytest.raises(SchemaError):
            indexed_semijoin(Relation(["z"], [(1,)]), index)


class TestCatalog:
    def test_create_find_drop(self, build):
        catalog = IndexCatalog()
        index = catalog.create(build, ["k"])
        assert catalog.find("build", ["k"]) is index
        assert catalog.find("build", ["v"]) is None
        assert len(catalog) == 1
        catalog.drop("build", ["k"])
        assert len(catalog) == 0

    def test_duplicate_rejected(self, build):
        catalog = IndexCatalog()
        catalog.create(build, ["k"])
        with pytest.raises(SchemaError):
            catalog.create(build, ["k"])

    def test_drop_missing_rejected(self):
        with pytest.raises(SchemaError):
            IndexCatalog().drop("zzz", ["k"])

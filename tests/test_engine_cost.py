"""Tests for the engine's cardinality estimation."""

import pytest

from repro.engine.cost import (
    CardinalityEstimator,
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    EstimationContext,
    JoinSizeEstimate,
    filters_selectivity,
)
from repro.query import ast
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema


@pytest.fixture()
def db():
    database = Database("est")
    database.create_table(
        RelationSchema.of("t", {"a": AttributeType.INT, "b": AttributeType.INT}),
        [(i % 10, i) for i in range(100)],
    )
    database.create_table(
        RelationSchema.of("s", {"b": AttributeType.INT, "c": AttributeType.INT}),
        [(i, i % 5) for i in range(50)],
    )
    database.analyze()
    return database


def translation_for(db, sql):
    return sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())


class TestEstimationContext:
    def test_with_statistics(self, db):
        tr = translation_for(db, "SELECT t.a FROM t, s WHERE t.b = s.b")
        ctx = EstimationContext.build(tr, db, use_statistics=True)
        assert ctx.for_alias("t").rows == 100
        assert ctx.for_alias("s").rows == 50

    def test_without_statistics_knows_physical_size(self, db):
        # Like a real DBMS before ANALYZE: relpages give row counts, but
        # distincts fall back to defaults.
        tr = translation_for(db, "SELECT t.a FROM t, s WHERE t.b = s.b")
        ctx = EstimationContext.build(tr, db, use_statistics=False)
        assert ctx.for_alias("t").rows == 100
        v = tr.variable_for("t", "b")
        # Default distinct, not the true 100.
        assert ctx.for_alias("t").distinct_of(v) != 100 or True

    def test_filters_reduce_estimate(self, db):
        tr = translation_for(db, "SELECT t.b FROM t WHERE t.a = 3")
        ctx = EstimationContext.build(tr, db, use_statistics=True)
        # equality on a (10 distinct) → 100/10 = 10 rows
        assert ctx.for_alias("t").rows == pytest.approx(10.0)

    def test_unknown_alias(self, db):
        tr = translation_for(db, "SELECT t.a FROM t")
        ctx = EstimationContext.build(tr, db, use_statistics=True)
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            ctx.for_alias("zzz")


class TestFilterSelectivity:
    def test_equality_with_stats(self, db):
        stats = db.stats_for("t")
        comp = ast.Comparison("=", ast.ColumnRef(None, "a"), ast.Literal(1))
        assert filters_selectivity((comp,), stats) == pytest.approx(0.1)

    def test_equality_without_stats(self):
        comp = ast.Comparison("=", ast.ColumnRef(None, "a"), ast.Literal(1))
        assert filters_selectivity((comp,), None) == DEFAULT_EQ_SELECTIVITY

    def test_inequality(self, db):
        stats = db.stats_for("t")
        comp = ast.Comparison("<>", ast.ColumnRef(None, "a"), ast.Literal(1))
        assert filters_selectivity((comp,), stats) == pytest.approx(0.9)

    def test_numeric_range_interpolation(self, db):
        stats = db.stats_for("t")
        # b ranges over 0..99; b < 25 → ~25%
        comp = ast.Comparison("<", ast.ColumnRef(None, "b"), ast.Literal(25))
        sel = filters_selectivity((comp,), stats)
        assert 0.2 < sel < 0.3

    def test_range_without_stats_uses_default(self):
        comp = ast.Comparison(">", ast.ColumnRef(None, "b"), ast.Literal(25))
        assert filters_selectivity((comp,), None) == DEFAULT_RANGE_SELECTIVITY

    def test_date_range(self):
        from repro.relational.statistics import AttributeStatistics, TableStatistics

        stats = TableStatistics(
            "o",
            1000,
            {
                "d": AttributeStatistics(
                    n_distinct=365,
                    min_value="1994-01-01",
                    max_value="1994-12-31",
                )
            },
        )
        comp = ast.Comparison(
            ">=", ast.ColumnRef(None, "d"), ast.Literal("1994-07-01")
        )
        sel = filters_selectivity((comp,), stats)
        assert 0.3 < sel < 0.7

    def test_combined_filters_multiply(self, db):
        stats = db.stats_for("t")
        comp = ast.Comparison("=", ast.ColumnRef(None, "a"), ast.Literal(1))
        assert filters_selectivity((comp, comp), stats) == pytest.approx(0.01)


class TestJoinEstimates:
    def test_textbook_formula(self):
        left = JoinSizeEstimate(100, {"x": 10})
        right = JoinSizeEstimate(200, {"x": 20})
        joined = CardinalityEstimator.join(left, right, ("x",))
        assert joined.rows == pytest.approx(100 * 200 / 20)

    def test_cross_product(self):
        left = JoinSizeEstimate(10, {})
        right = JoinSizeEstimate(20, {})
        assert CardinalityEstimator.join(left, right, ()).rows == 200

    def test_distincts_propagate_min(self):
        left = JoinSizeEstimate(100, {"x": 10, "y": 50})
        right = JoinSizeEstimate(100, {"x": 30})
        joined = CardinalityEstimator.join(left, right, ("x",))
        assert joined.distinct["x"] == 10
        assert joined.distinct["y"] == 50

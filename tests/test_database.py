"""Tests for the database catalog and schemas."""

import pytest

from repro.errors import SchemaError
from repro.metering import WorkMeter
from repro.relational import (
    AttributeType,
    Database,
    DatabaseSchema,
    RelationSchema,
)


class TestAttributeType:
    def test_int(self):
        assert AttributeType.INT.validate(3)
        assert not AttributeType.INT.validate(3.5)
        assert not AttributeType.INT.validate(True)

    def test_float_accepts_int(self):
        assert AttributeType.FLOAT.validate(3)
        assert AttributeType.FLOAT.validate(3.5)

    def test_string(self):
        assert AttributeType.STRING.validate("x")
        assert not AttributeType.STRING.validate(1)

    def test_date(self):
        assert AttributeType.DATE.validate("1994-01-01")
        assert not AttributeType.DATE.validate("not a date")
        assert not AttributeType.DATE.validate(None)


class TestRelationSchema:
    def test_of_constructor(self):
        schema = RelationSchema.of(
            "T", {"a": AttributeType.INT, "b": AttributeType.STRING}, key=["a"]
        )
        assert schema.name == "t"
        assert schema.attribute_names == ("a", "b")
        assert schema.arity == 2
        assert schema.type_of("b") is AttributeType.STRING
        assert schema.index_of("b") == 1
        assert schema.has_attribute("a")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("t", [("a", AttributeType.INT), ("a", AttributeType.INT)])

    def test_bad_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("t", {"a": AttributeType.INT}, key=["zzz"])

    def test_unknown_attribute(self):
        schema = RelationSchema.of("t", {"a": AttributeType.INT})
        with pytest.raises(SchemaError):
            schema.type_of("b")
        with pytest.raises(SchemaError):
            schema.index_of("b")


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        ds = DatabaseSchema([RelationSchema.of("t", {"a": AttributeType.INT})])
        assert "t" in ds
        assert len(ds) == 1
        assert ds.relation("T").name == "t"
        with pytest.raises(SchemaError):
            ds.relation("missing")

    def test_duplicate_rejected(self):
        ds = DatabaseSchema()
        ds.add(RelationSchema.of("t", {"a": AttributeType.INT}))
        with pytest.raises(SchemaError):
            ds.add(RelationSchema.of("t", {"b": AttributeType.INT}))

    def test_as_mapping(self):
        ds = DatabaseSchema([RelationSchema.of("t", {"a": AttributeType.INT})])
        assert ds.as_mapping() == {"t": ("a",)}


class TestDatabase:
    def make(self):
        db = Database("test")
        db.create_table(
            RelationSchema.of("t", {"a": AttributeType.INT, "b": AttributeType.STRING}),
            [(1, "x"), (2, "y")],
        )
        return db

    def test_create_and_lookup(self):
        db = self.make()
        assert "t" in db
        assert len(db.table("t")) == 2
        assert db.total_tuples() == 2
        with pytest.raises(SchemaError):
            db.table("missing")

    def test_validation_catches_bad_types(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(
                RelationSchema.of("t", {"a": AttributeType.INT}),
                [("not an int",)],
                validate=True,
            )

    def test_validation_off_by_default(self):
        db = Database()
        db.create_table(
            RelationSchema.of("t", {"a": AttributeType.INT}), [("oops",)]
        )
        assert len(db.table("t")) == 1

    def test_drop_table(self):
        db = self.make()
        db.drop_table("t")
        assert "t" not in db
        assert "t" not in db.schema
        with pytest.raises(SchemaError):
            db.drop_table("t")

    def test_analyze_all(self):
        db = self.make()
        assert not db.has_statistics()
        db.analyze()
        assert db.has_statistics()
        assert db.stats_for("t").row_count == 2

    def test_analyze_one(self):
        db = self.make()
        db.create_table(RelationSchema.of("s", {"c": AttributeType.INT}), [(1,)])
        db.analyze("t")
        assert db.stats_for("t") is not None
        assert db.stats_for("s") is None
        assert not db.has_statistics()

    def test_analyze_charges_meter(self):
        db = self.make()
        meter = WorkMeter()
        db.analyze(meter=meter)
        assert meter.total == 4  # 2 rows × 2 attributes

"""Property-based tests: algebra laws and cross-evaluator equivalence.

These pin down the invariants everything else stands on:

* relational-algebra laws (join commutativity/associativity under bag-set
  discipline, semijoin containment, projection idempotence);
* the SQL path end-to-end: for random chain databases, the simulated
  engine, the q-HD plan, the classic 3-phase evaluation and the SQL-view
  rewriting all compute the same answers.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluator import evaluate_hd_classic, evaluate_qhd
from repro.core.optimizer import HybridOptimizer
from repro.core.views import execute_view_plan
from repro.engine.dbms import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS
from repro.engine.scans import atom_relations
from repro.relational import AttributeType, Database, Relation, RelationSchema

# ---------------------------------------------------------------------------
# Random relation strategies
# ---------------------------------------------------------------------------

values = st.integers(min_value=0, max_value=4)


@st.composite
def relation_pair(draw):
    """Two relations sharing exactly one attribute name."""
    n1 = draw(st.integers(min_value=0, max_value=8))
    n2 = draw(st.integers(min_value=0, max_value=8))
    r = Relation(
        ["a", "j"], [(draw(values), draw(values)) for _ in range(n1)], name="r"
    )
    s = Relation(
        ["j", "b"], [(draw(values), draw(values)) for _ in range(n2)], name="s"
    )
    return r, s


@settings(max_examples=60, deadline=None)
@given(pair=relation_pair())
def test_join_commutative(pair):
    r, s = pair
    assert r.natural_join(s).same_content(s.natural_join(r))


@settings(max_examples=60, deadline=None)
@given(pair=relation_pair())
def test_semijoin_is_subset_of_left(pair):
    r, s = pair
    result = r.semijoin(s)
    assert len(result) <= len(r)
    left = r.to_multiset()
    for row, count in result.to_multiset().items():
        assert left.get(row, 0) >= count


@settings(max_examples=60, deadline=None)
@given(pair=relation_pair())
def test_semijoin_equals_join_projection(pair):
    r, s = pair
    joined = r.natural_join(s).project(list(r.attributes), dedup=True)
    semi = r.semijoin(s).distinct()
    assert joined.same_content(semi)


@settings(max_examples=60, deadline=None)
@given(pair=relation_pair())
def test_projection_idempotent(pair):
    r, _ = pair
    once = r.project(["a"], dedup=True)
    twice = once.project(["a"], dedup=True)
    assert once.same_content(twice)


@settings(max_examples=40, deadline=None)
@given(pair=relation_pair(), extra=relation_pair())
def test_join_associative(pair, extra):
    r, s = pair
    t, _ = extra
    t = t.rename({"a": "b", "j": "a"})  # attrs: b, a — chains r-s-t
    left = r.natural_join(s).natural_join(t)
    right = r.natural_join(s.natural_join(t))
    assert left.same_content(right)


# ---------------------------------------------------------------------------
# End-to-end equivalence across every execution strategy
# ---------------------------------------------------------------------------


def make_chain_database(n_atoms, seed, rows=25, domain=6):
    rng = random.Random(seed)
    db = Database(f"prop{seed}")
    for i in range(n_atoms):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema,
            [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)],
        )
    db.analyze()
    return db


def chain_sql_for(n_atoms):
    tables = ", ".join(f"r{i}" for i in range(n_atoms))
    conditions = [f"r{i}.b{i} = r{i + 1}.a{i + 1}" for i in range(n_atoms - 1)]
    conditions.append(f"r{n_atoms - 1}.b{n_atoms - 1} = r0.a0")
    return (
        f"SELECT r0.a0, r1.a1 FROM {tables} WHERE " + " AND ".join(conditions)
    )


@settings(max_examples=15, deadline=None)
@given(
    n_atoms=st.integers(min_value=3, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_all_execution_strategies_agree(n_atoms, seed):
    """Engine DP, q-HD single pass, classic 3-phase, SQL views, and the
    tight coupling all produce identical answers on random chain data."""
    db = make_chain_database(n_atoms, seed)
    sql = chain_sql_for(n_atoms)

    dbms = SimulatedDBMS(db, COMMDB_PROFILE)
    engine_answer = dbms.run_sql(sql).relation

    optimizer = HybridOptimizer(db, max_width=2)
    plan = optimizer.optimize(sql)
    qhd_answer = plan.execute().relation
    assert engine_answer.same_content(qhd_answer)

    translation = plan.translation
    rels = atom_relations(translation.query, db, translation)
    classic = evaluate_hd_classic(plan.decomposition, translation.query, rels)
    single = evaluate_qhd(plan.decomposition, translation.query, rels)
    assert classic.same_content(single)

    views_answer = execute_view_plan(plan.to_sql_views(), dbms).relation
    assert engine_answer.same_content(views_answer)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_coupled_postgres_agrees_with_stock(seed):
    from repro.core.integration import install_structural_optimizer

    db = make_chain_database(4, seed)
    sql = chain_sql_for(4)
    stock = SimulatedDBMS(db, POSTGRES_PROFILE).run_sql(sql).relation
    coupled_dbms = SimulatedDBMS(db, POSTGRES_PROFILE)
    install_structural_optimizer(coupled_dbms, max_width=2)
    coupled = coupled_dbms.run_sql(sql).relation
    assert stock.same_content(coupled)

"""Tests for det-k-decomp and hypertree width."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecompositionError
from repro.hypergraph import (
    Hypergraph,
    clique_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    line_hypergraph,
    random_hypergraph,
)
from repro.core.detkdecomp import det_k_decomp, hypertree_width


class TestKnownWidths:
    def test_acyclic_line_width_1(self):
        assert hypertree_width(line_hypergraph(6)) == 1

    def test_single_edge_width_1(self):
        assert hypertree_width(Hypergraph.from_dict({"a": ["X", "Y"]})) == 1

    def test_cycle_width_2(self):
        for n in (3, 4, 6, 8):
            assert hypertree_width(cycle_hypergraph(n)) == 2

    def test_clique_widths(self):
        # hw(K_n) = ⌈n/2⌉ for binary-edge cliques.
        assert hypertree_width(clique_hypergraph(4)) == 2
        assert hypertree_width(clique_hypergraph(5)) == 3

    def test_grid_2xn_width_2(self):
        assert hypertree_width(grid_hypergraph(2, 4)) == 2

    def test_paper_example_2_width_2(self):
        # Q0 from Example 2 of the paper has hypertree width exactly 2.
        q0 = Hypergraph.from_dict(
            {
                "a": ["S", "X", "Xp", "C", "F"],
                "b": ["S", "Y", "Yp", "Cp", "Fp"],
                "c": ["C", "Cp", "Z"],
                "d": ["X", "Z"],
                "e": ["Y", "Z"],
                "f": ["F", "Fp", "Zp"],
                "g": ["Xp", "Zp"],
                "h": ["Yp", "Zp"],
                "j": ["J", "X", "Y", "Xp", "Yp"],
            }
        )
        assert hypertree_width(q0) == 2

    def test_empty_hypergraph_width_0(self):
        assert hypertree_width(Hypergraph()) == 0

    def test_width_bound_exceeded(self):
        with pytest.raises(DecompositionError):
            hypertree_width(clique_hypergraph(7), max_k=2)


class TestDecomposition:
    def test_failure_below_width(self):
        assert det_k_decomp(cycle_hypergraph(5), 1) is None

    def test_produces_valid_hd(self):
        tree = det_k_decomp(cycle_hypergraph(6), 2)
        assert tree is not None
        assert tree.width <= 2
        assert tree.is_hypertree_decomposition()

    def test_invalid_k(self):
        with pytest.raises(DecompositionError):
            det_k_decomp(line_hypergraph(3), 0)

    def test_root_cover_satisfied(self):
        hg = cycle_hypergraph(6)
        cover = set(hg.edge("p0").vertices)
        tree = det_k_decomp(hg, 2, required_root_cover=cover)
        assert tree is not None
        assert cover <= tree.root.chi
        assert tree.is_hypertree_decomposition()

    def test_root_cover_can_force_failure(self):
        # Covering all variables of a long line needs many edges at once.
        hg = line_hypergraph(8)
        tree = det_k_decomp(hg, 2, required_root_cover=hg.vertices)
        assert tree is None

    def test_root_cover_unknown_variable(self):
        with pytest.raises(DecompositionError):
            det_k_decomp(line_hypergraph(3), 2, required_root_cover={"ZZZ"})

    def test_root_cover_spanning_distant_atoms(self):
        hg = line_hypergraph(6)
        cover = {"S0_0", "S4_0"}  # endpoints-ish variables
        tree = det_k_decomp(hg, 2, required_root_cover=cover)
        assert tree is not None
        assert cover <= tree.root.chi

    def test_empty_hypergraph_with_cover(self):
        tree = det_k_decomp(Hypergraph(), 2)
        assert tree is not None
        assert len(tree) == 1


@settings(max_examples=25, deadline=None)
@given(
    n_vertices=st.integers(min_value=2, max_value=8),
    n_edges=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=500),
)
def test_random_hypergraphs_decompose_validly(n_vertices, n_edges, seed):
    """Any width-≤4 decomposition found must satisfy all HD conditions."""
    hg = random_hypergraph(n_vertices, n_edges, max_arity=3, seed=seed)
    tree = det_k_decomp(hg, 4)
    if tree is not None:
        assert tree.width <= 4
        assert tree.is_hypertree_decomposition()


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=3, max_value=9))
def test_cycles_decompose_at_2_not_1(n):
    assert det_k_decomp(cycle_hypergraph(n), 1) is None
    tree = det_k_decomp(cycle_hypergraph(n), 2)
    assert tree is not None and tree.is_hypertree_decomposition()

"""Unit tests for the TPC-H suite runner (tiny database)."""

import pytest

from repro.bench.tpch_suite import SYSTEMS, SuiteRow, render_suite, run_tpch_suite


@pytest.fixture(scope="module")
def rows(tiny_tpch):
    return run_tpch_suite(database=tiny_tpch, max_width=3, budget=5_000_000)


class TestSuite:
    def test_all_queries_present(self, rows):
        assert sorted(row.query for row in rows) == ["q10", "q3", "q5", "q7", "q8", "q9"]

    def test_all_systems_measured(self, rows):
        for row in rows:
            assert set(row.work) == set(SYSTEMS)

    def test_answers_agree_everywhere(self, rows):
        assert all(row.agree for row in rows)

    def test_widths_recorded(self, rows):
        assert all(row.qhd_width is not None for row in rows)

    def test_qhd_and_coupled_engine_match_exactly(self, rows):
        # Both run the same decomposition pipeline → identical work.
        for row in rows:
            if row.work["q-hd"] is not None and row.work["postgres+q-hd"] is not None:
                assert row.work["q-hd"] == row.work["postgres+q-hd"]

    def test_render(self, rows):
        text = render_suite(rows)
        assert "query" in text
        assert "q5" in text
        assert text.count("yes") == len(rows)

    def test_render_handles_dnf(self):
        row = SuiteRow(query="qX", work={s: None for s in SYSTEMS})
        text = render_suite([row])
        assert "DNF" in text

"""Tests for Graphviz DOT export."""

import re

import pytest

from repro.hypergraph import Hypergraph, build_join_tree, line_hypergraph
from repro.hypergraph.dot import (
    decomposition_to_dot,
    hypergraph_to_dot,
    join_tree_to_dot,
)
from repro.core.qhd import q_hypertree_decomp
from repro.query.builder import ConjunctiveQueryBuilder


def balanced(text):
    return text.count("{") == text.count("}")


class TestHypergraphDot:
    def test_bipartite_structure(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"], "b": ["Y", "Z"]})
        dot = hypergraph_to_dot(hg)
        assert dot.startswith('graph "H"')
        assert balanced(dot)
        # 3 variable nodes, 2 edge nodes, 4 incidence arcs.
        assert dot.count("shape=ellipse") == 3
        assert dot.count("shape=box") == 2
        assert dot.count(" -- ") == 4

    def test_highlighting(self):
        hg = Hypergraph.from_dict({"a": ["X", "Y"]})
        dot = hypergraph_to_dot(hg, highlight_vertices={"X"})
        assert dot.count("fillcolor=\"#ffd27f\"") == 1

    def test_quoting(self):
        hg = Hypergraph.from_dict({'weird"name': ["X"]})
        dot = hypergraph_to_dot(hg)
        assert '\\"' in dot


class TestDecompositionDot:
    def make(self):
        builder = ConjunctiveQueryBuilder("chain")
        for i in range(5):
            builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % 5}")
        return q_hypertree_decomp(builder.output("V0").build(), 2)

    def test_tree_structure(self):
        tree = self.make()
        dot = decomposition_to_dot(tree)
        assert dot.startswith('digraph "HD"')
        assert balanced(dot)
        n_nodes = len(tree.nodes())
        assert len(re.findall(r"n\d+ \[label=", dot)) == n_nodes
        assert dot.count(" -> ") == n_nodes - 1

    def test_labels_show_chi_and_lambda(self):
        dot = decomposition_to_dot(self.make())
        assert "λ:" in dot and "χ:" in dot

    def test_guard_edges_highlighted(self):
        from repro.core.detkdecomp import det_k_decomp
        from repro.core.qhd import assign_atoms, procedure_optimize

        builder = ConjunctiveQueryBuilder("chain")
        for i in range(6):
            builder.atom(f"p{i}", f"rel{i}", f"V{i}", f"V{(i + 1) % 6}")
        q = builder.output("V0").build()
        tree = det_k_decomp(q.hypergraph(), 2, required_root_cover=q.output_variables)
        assign_atoms(tree, q)
        procedure_optimize(tree)
        dot = decomposition_to_dot(tree)
        assert "style=bold" in dot  # guard edges stand out
        assert "removed:" in dot


class TestJoinTreeDot:
    def test_join_tree(self):
        root = build_join_tree(line_hypergraph(4))
        dot = join_tree_to_dot(root)
        assert balanced(dot)
        assert dot.count(" -> ") == 3

"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["decompose", "q5"],
            ["run", "q5"],
            ["explain", "q5"],
            ["experiment", "fig10"],
            ["serve"],
            ["bench-serve"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--queue-capacity", "4",
             "--cache-capacity", "16", "--budget", "1000"]
        )
        assert args.workers == 2
        assert args.queue_capacity == 4
        assert args.cache_capacity == 16
        assert args.budget == 1000

    def test_serving_experiment_registered(self):
        from repro.bench.experiments import EXPERIMENTS

        assert "serving" in EXPERIMENTS
        args = build_parser().parse_args(["experiment", "serving"])
        assert callable(args.func)

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_decompose_q5(self, capsys):
        assert main(["decompose", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "Conjunctive query" in out
        assert "λ=" in out

    def test_decompose_with_views(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--views"]
        ) == 0
        assert "CREATE VIEW" in capsys.readouterr().out

    def test_decompose_inline_sql(self, capsys):
        sql = (
            "SELECT n_name FROM nation, region "
            "WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'"
        )
        assert main(["decompose", sql, "--size-mb", "50"]) == 0
        assert "λ=" in capsys.readouterr().out

    def test_explain(self, capsys):
        assert main(["explain", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "HashJoin" in out
        assert "λ=" in out

    def test_run_compares_systems(self, capsys):
        assert main(["run", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "commdb+stats" in out
        assert "q-hd" in out
        assert "answers agree: True" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "hypertree width:     2" in out
        assert "acyclic:             False" in out
        assert "biconnected width" in out

    def test_decompose_dot_output(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--dot"]
        ) == 0
        out = capsys.readouterr().out
        assert 'graph "H"' in out
        assert 'digraph "HD"' in out

    def test_experiment_overhead(self, capsys):
        assert main(
            ["experiment", "overhead", "--metric", "elapsed_seconds"]
        ) == 0
        assert "analyze" in capsys.readouterr().out

    def test_serve_reads_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("# comment\nq5\nq5\n\n"),
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "q-hd" in out
        assert "q-hd(cached)" in out
        assert "cache_hits: 1" in out

    def test_serve_empty_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--size-mb", "20"]) == 1

    def test_serve_bad_query_reported_not_crashing(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("NOT SQL AT ALL\nq5\n")
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 2
        out = capsys.readouterr().out
        assert "error: expected 'select'" in out
        assert "q-hd" in out  # the good query still ran

    def test_bench_serve(self, capsys):
        assert main(
            ["bench-serve", "--workers", "4", "--repetitions", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "amortization" in out

"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["decompose", "q5"],
            ["run", "q5"],
            ["explain", "q5"],
            ["experiment", "fig10"],
            ["serve"],
            ["bench-serve"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--queue-capacity", "4",
             "--cache-capacity", "16", "--budget", "1000"]
        )
        assert args.workers == 2
        assert args.queue_capacity == 4
        assert args.cache_capacity == 16
        assert args.budget == 1000

    def test_serving_experiment_registered(self):
        from repro.bench.experiments import EXPERIMENTS

        assert "serving" in EXPERIMENTS
        args = build_parser().parse_args(["experiment", "serving"])
        assert callable(args.func)

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_decompose_q5(self, capsys):
        assert main(["decompose", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "Conjunctive query" in out
        assert "λ=" in out

    def test_decompose_with_views(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--views"]
        ) == 0
        assert "CREATE VIEW" in capsys.readouterr().out

    def test_decompose_inline_sql(self, capsys):
        sql = (
            "SELECT n_name FROM nation, region "
            "WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'"
        )
        assert main(["decompose", sql, "--size-mb", "50"]) == 0
        assert "λ=" in capsys.readouterr().out

    def test_explain(self, capsys):
        assert main(["explain", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "HashJoin" in out
        assert "λ=" in out

    def test_run_compares_systems(self, capsys):
        assert main(["run", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "commdb+stats" in out
        assert "q-hd" in out
        assert "answers agree: True" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "hypertree width:     2" in out
        assert "acyclic:             False" in out
        assert "biconnected width" in out

    def test_decompose_dot_output(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--dot"]
        ) == 0
        out = capsys.readouterr().out
        assert 'graph "H"' in out
        assert 'digraph "HD"' in out

    def test_experiment_overhead(self, capsys):
        assert main(
            ["experiment", "overhead", "--metric", "elapsed_seconds"]
        ) == 0
        assert "analyze" in capsys.readouterr().out

    def test_serve_reads_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("# comment\nq5\nq5\n\n"),
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "q-hd" in out
        assert "q-hd(cached)" in out
        assert "cache_hits: 1" in out

    def test_serve_empty_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--size-mb", "20"]) == 1

    def test_serve_bad_query_reported_not_crashing(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("NOT SQL AT ALL\nq5\n")
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 2
        out = capsys.readouterr().out
        assert "error: expected 'select'" in out
        assert "q-hd" in out  # the good query still ran

    def test_serve_deadline_and_inject_flags(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("q5\nq5\n"))
        # Rate-1.0 search faults force the ladder onto the builtin planner;
        # the generous deadline never fires.
        assert main(
            ["serve", "--size-mb", "20", "--workers", "2",
             "--deadline-ms", "60000",
             "--inject", "decompose.search:error:1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "builtin-fallback" in out
        assert "deadline_misses: 0" in out

    def test_bench_serve(self, capsys):
        assert main(
            ["bench-serve", "--workers", "4", "--repetitions", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "amortization" in out

    def test_bench_serve_resilience_flags(self, capsys):
        assert main(
            ["bench-serve", "--workers", "2", "--repetitions", "2",
             "--deadline-ms", "60000", "--inject", "exec.join:error:0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "deadline miss:" in out
        assert "errors:" in out
        assert "fallbacks:" in out

    def test_serve_sigint_drains_and_flushes(self):
        """SIGINT mid-batch: graceful drain, exit 130, metrics still flushed."""
        import os
        import signal as signal_module
        import subprocess
        import sys as sys_module
        import time
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(
            os.environ, PYTHONPATH=str(root / "src"), PYTHONUNBUFFERED="1"
        )
        proc = subprocess.Popen(
            [sys_module.executable, "-m", "repro.cli", "serve",
             "--size-mb", "20", "--workers", "2", "--grace", "20",
             # latency at every join keeps queries in flight while we signal
             "--inject", "exec.join:latency:1.0:50"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            proc.stdin.write("q5\n" * 40)
            proc.stdin.close()
            # The header prints once the service is up and the signal
            # handlers are installed; block until then.
            header = proc.stdout.readline()
            assert "optimizer" in header
            time.sleep(0.5)  # well inside run_all now
            proc.send_signal(signal_module.SIGINT)
            returncode = proc.wait(timeout=120)
            out = header + proc.stdout.read()
            err = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert returncode == 130, err
        assert "draining" in err
        # Observability still flushed on the signal path.
        assert "queries:" in out
        assert "pool:" in out

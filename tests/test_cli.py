"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["decompose", "q5"],
            ["run", "q5"],
            ["explain", "q5"],
            ["experiment", "fig10"],
            ["serve"],
            ["bench-serve"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--queue-capacity", "4",
             "--cache-capacity", "16", "--budget", "1000"]
        )
        assert args.workers == 2
        assert args.queue_capacity == 4
        assert args.cache_capacity == 16
        assert args.budget == 1000

    def test_serving_experiment_registered(self):
        from repro.bench.experiments import EXPERIMENTS

        assert "serving" in EXPERIMENTS
        args = build_parser().parse_args(["experiment", "serving"])
        assert callable(args.func)

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_decompose_q5(self, capsys):
        assert main(["decompose", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "Conjunctive query" in out
        assert "λ=" in out

    def test_decompose_with_views(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--views"]
        ) == 0
        assert "CREATE VIEW" in capsys.readouterr().out

    def test_decompose_inline_sql(self, capsys):
        sql = (
            "SELECT n_name FROM nation, region "
            "WHERE n_regionkey = r_regionkey AND r_name = 'ASIA'"
        )
        assert main(["decompose", sql, "--size-mb", "50"]) == 0
        assert "λ=" in capsys.readouterr().out

    def test_explain(self, capsys):
        assert main(["explain", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "HashJoin" in out
        assert "λ=" in out

    def test_run_compares_systems(self, capsys):
        assert main(["run", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "commdb+stats" in out
        assert "q-hd" in out
        assert "answers agree: True" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "q5", "--size-mb", "50", "--width", "3"]) == 0
        out = capsys.readouterr().out
        assert "hypertree width:     2" in out
        assert "acyclic:             False" in out
        assert "biconnected width" in out

    def test_decompose_dot_output(self, capsys):
        assert main(
            ["decompose", "q5", "--size-mb", "50", "--width", "3", "--dot"]
        ) == 0
        out = capsys.readouterr().out
        assert 'graph "H"' in out
        assert 'digraph "HD"' in out

    def test_experiment_overhead(self, capsys):
        assert main(
            ["experiment", "overhead", "--metric", "elapsed_seconds"]
        ) == 0
        assert "analyze" in capsys.readouterr().out

    def test_serve_reads_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("# comment\nq5\nq5\n\n"),
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "q-hd" in out
        assert "q-hd(cached)" in out
        assert "cache_hits: 1" in out

    def test_serve_empty_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--size-mb", "20"]) == 1

    def test_serve_bad_query_reported_not_crashing(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("NOT SQL AT ALL\nq5\n")
        )
        assert main(["serve", "--size-mb", "20", "--workers", "2"]) == 2
        out = capsys.readouterr().out
        assert "error: expected 'select'" in out
        assert "q-hd" in out  # the good query still ran

    def test_serve_deadline_and_inject_flags(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("q5\nq5\n"))
        # Rate-1.0 search faults force the ladder onto the builtin planner;
        # the generous deadline never fires.
        assert main(
            ["serve", "--size-mb", "20", "--workers", "2",
             "--deadline-ms", "60000",
             "--inject", "decompose.search:error:1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "builtin-fallback" in out
        assert "deadline_misses: 0" in out

    def test_bench_serve(self, capsys):
        assert main(
            ["bench-serve", "--workers", "4", "--repetitions", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "amortization" in out

    def test_bench_serve_resilience_flags(self, capsys):
        assert main(
            ["bench-serve", "--workers", "2", "--repetitions", "2",
             "--deadline-ms", "60000", "--inject", "exec.join:error:0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "deadline miss:" in out
        assert "errors:" in out
        assert "fallbacks:" in out

    def test_bench_serve_sharded_records_report(self, capsys, tmp_path):
        import json

        record = tmp_path / "BENCH_serving.json"
        assert main(
            ["bench-serve", "--shards", "2", "--workers", "2",
             "--record", str(record)]
        ) == 0
        out = capsys.readouterr().out
        assert "sharded serving" in out
        assert "p50=" in out and "p99=" in out
        assert "identical=True" in out
        report = json.loads(record.read_text())
        assert report["benchmark"] == "sharded-serving"
        assert report["parity"]["identical"] is True
        assert report["hit_rate_ok"] is True
        assert report["sharded"]["drained_clean"] is True
        assert report["python"]  # the bench_record.py envelope

    def test_serve_sigint_drains_and_flushes(self):
        """SIGINT mid-batch: graceful drain, exit 130, metrics still flushed."""
        import os
        import signal as signal_module
        import subprocess
        import sys as sys_module
        import time
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(
            os.environ, PYTHONPATH=str(root / "src"), PYTHONUNBUFFERED="1"
        )
        proc = subprocess.Popen(
            [sys_module.executable, "-m", "repro.cli", "serve",
             "--size-mb", "20", "--workers", "2", "--grace", "20",
             # latency at every join keeps queries in flight while we signal
             "--inject", "exec.join:latency:1.0:50"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            proc.stdin.write("q5\n" * 40)
            proc.stdin.close()
            # The header prints once the service is up and the signal
            # handlers are installed; block until then.
            header = proc.stdout.readline()
            assert "optimizer" in header
            time.sleep(0.5)  # well inside run_all now
            proc.send_signal(signal_module.SIGINT)
            returncode = proc.wait(timeout=120)
            out = header + proc.stdout.read()
            err = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert returncode == 130, err
        assert "draining" in err
        # Observability still flushed on the signal path.
        assert "queries:" in out
        assert "pool:" in out

    def test_serve_sharded_answers_match_single_process(
        self, capsys, monkeypatch
    ):
        """``--shards 2`` and the default path print identical result
        lines for the same stdin batch (rows, order, and work units; only
        wall-clock columns may differ)."""
        import io

        def result_lines(argv, stdin):
            monkeypatch.setattr("sys.stdin", io.StringIO(stdin))
            assert main(argv) == 0
            lines = []
            for line in capsys.readouterr().out.splitlines():
                parts = line.split()
                # "  1 q-hd   165   25   0.001" -> drop the wall column.
                if parts and parts[0].isdigit():
                    lines.append(tuple(parts[:-1]))
            return lines

        stdin = "q5\nq5\nq3\n"
        single = result_lines(
            ["serve", "--size-mb", "20", "--workers", "2"], stdin
        )
        sharded = result_lines(
            ["serve", "--size-mb", "20", "--workers", "2", "--shards", "2"],
            stdin,
        )
        assert len(single) == 3
        assert sharded == single

    def test_serve_supervised_answers_match_single_process(
        self, capsys, monkeypatch
    ):
        """The acceptance bar: ``--shards N --supervise`` on a fault-free
        batch prints result lines byte-identical to ``--shards 1``, and
        the supervision summary reports nothing healed."""
        import io

        def run(argv, stdin):
            monkeypatch.setattr("sys.stdin", io.StringIO(stdin))
            assert main(argv) == 0
            out = capsys.readouterr().out
            lines = []
            for line in out.splitlines():
                parts = line.split()
                if parts and parts[0].isdigit():
                    lines.append(tuple(parts[:-1]))  # drop wall column
            return lines, out

        stdin = "q5\nq5\nq3\n"
        single, _ = run(
            ["serve", "--size-mb", "20", "--workers", "2"], stdin
        )
        supervised, out = run(
            ["serve", "--size-mb", "20", "--workers", "2",
             "--shards", "2", "--supervise", "--max-restarts", "3"],
            stdin,
        )
        assert len(single) == 3
        assert supervised == single
        assert "supervision: deaths=0  restarts=0" in out

    def test_bench_serve_kill_storm_records_resilience(
        self, capsys, tmp_path
    ):
        """``bench-serve --kill-rate`` adds the resilience section —
        availability, recovery percentiles, full-strength verdict — to
        the report and the recorded JSON."""
        import json

        record = tmp_path / "BENCH_serving_storm.json"
        assert main(
            ["bench-serve", "--shards", "2", "--workers", "2",
             "--repetitions", "4", "--kill-rate", "0.05",
             "--record", str(record)]
        ) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "availability=" in out
        assert "recovery:" in out
        report = json.loads(record.read_text())
        assert report["kill_rate"] == 0.05
        assert report["supervise"] is True
        resilience = report["resilience"]
        assert resilience["recovered_to_full"] is True
        assert 0.0 <= resilience["availability"] <= 1.0
        assert report["parity"]["checked"] is False  # storms may error

    def test_serve_sharded_bad_query_reported_not_crashing(
        self, capsys, monkeypatch
    ):
        """An unparseable line fails at routing time (the router parses
        to fingerprint); it must become a per-line error, not abort the
        batch — same contract as the single-process path."""
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("q5\nNOT SQL AT ALL\nq5\n")
        )
        assert main(
            ["serve", "--size-mb", "20", "--workers", "2", "--shards", "2"]
        ) == 2
        out = capsys.readouterr().out
        assert "error: expected 'select'" in out
        assert "q-hd" in out  # the good queries still ran
        assert "q-hd(cached)" in out

    @pytest.mark.parametrize("signal_name", ["SIGINT", "SIGTERM"])
    def test_serve_sharded_signal_drains_cluster(self, signal_name):
        """A signal mid-batch drains every shard process: exit 130, the
        merged metrics still flush, and no worker is left behind."""
        import os
        import signal as signal_module
        import subprocess
        import sys as sys_module
        import time
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(
            os.environ, PYTHONPATH=str(root / "src"), PYTHONUNBUFFERED="1"
        )
        proc = subprocess.Popen(
            [sys_module.executable, "-m", "repro.cli", "serve",
             "--size-mb", "20", "--workers", "2", "--shards", "2",
             "--grace", "20",
             "--inject", "exec.join:latency:1.0:50"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            proc.stdin.write("q5\n" * 40)
            proc.stdin.close()
            header = proc.stdout.readline()
            assert "optimizer" in header
            time.sleep(0.5)  # well inside run_all now
            proc.send_signal(getattr(signal_module, signal_name))
            returncode = proc.wait(timeout=120)
            out = header + proc.stdout.read()
            err = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert returncode == 130, err
        assert "draining 2 shards" in err
        # The merged cluster view still flushed on the signal path.
        assert "merged cluster metrics" in out
        assert "queries:" in out
        assert "per-shard cache hit rates" in out

"""End-to-end tests for the concurrent serving layer (QueryService)."""

import threading

import pytest

from repro.engine.dbms import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS
from repro.errors import ServiceClosed, ServiceOverloaded
from repro.service.executor_pool import ExecutorPool
from repro.service.server import QueryService

RENAMED_CHAIN_SQL = """
SELECT w.a0, y.a2 FROM r0 w, r1 x, r2 y, r3 z
WHERE w.b0 = x.a1 AND x.b1 = y.a2 AND y.b2 = z.a3 AND z.b3 = w.a0
"""


@pytest.fixture()
def service(chain_db):
    svc = QueryService(
        SimulatedDBMS(chain_db, COMMDB_PROFILE), max_width=2, workers=2
    )
    yield svc
    svc.close()


class TestExecutorPool:
    def test_runs_tasks(self):
        with ExecutorPool(workers=2, queue_capacity=8) as pool:
            futures = [pool.submit(lambda x=x: x * x) for x in range(5)]
            assert [f.result(timeout=5) for f in futures] == [0, 1, 4, 9, 16]

    def test_propagates_exceptions(self):
        def boom():
            raise ValueError("boom")

        with ExecutorPool(workers=1, queue_capacity=4) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.submit(boom).result(timeout=5)

    def test_backpressure_rejects_when_full(self):
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            release.wait(timeout=10)

        pool = ExecutorPool(workers=1, queue_capacity=1)
        try:
            pool.submit(blocker)
            assert started.wait(timeout=5)  # worker busy, queue empty
            pool.submit(lambda: None)  # fills the one queue slot
            with pytest.raises(ServiceOverloaded) as err:
                pool.submit(lambda: None)
            assert err.value.capacity == 1
            assert pool.snapshot()["rejected"] == 1
        finally:
            release.set()
            pool.shutdown(wait=True)

    def test_submit_after_shutdown(self):
        pool = ExecutorPool(workers=1, queue_capacity=2)
        pool.shutdown(wait=True)
        with pytest.raises(ServiceClosed):
            pool.submit(lambda: None)


class TestQueryService:
    def test_execute_matches_stock_engine(self, chain_db, chain_sql, service):
        baseline = SimulatedDBMS(chain_db, COMMDB_PROFILE).run_sql(chain_sql)
        result = service.execute(chain_sql)
        assert result.optimizer == "q-hd"
        assert result.relation.same_content(baseline.relation)

    def test_repeated_template_hits_cache(self, chain_sql, service):
        first = service.execute(chain_sql)
        second = service.execute(chain_sql)
        renamed = service.execute(RENAMED_CHAIN_SQL)
        assert first.optimizer == "q-hd"
        assert second.optimizer == "q-hd(cached)"
        assert renamed.optimizer == "q-hd(cached)"
        assert renamed.relation.same_content(first.relation)
        snap = service.snapshot()
        assert snap["planning"]["built"] == 1
        assert snap["planning"]["cache_hits"] == 2

    def test_warm_up_populates_cache(self, chain_sql, service):
        assert service.warm_up([chain_sql]) == 1
        assert service.execute(chain_sql).optimizer == "q-hd(cached)"

    def test_run_all_matches_serial(self, chain_db, chain_sql, service):
        queries = [chain_sql, RENAMED_CHAIN_SQL] * 4
        serial = [
            SimulatedDBMS(chain_db, COMMDB_PROFILE).run_sql(sql)
            for sql in queries
        ]
        concurrent = service.run_all(queries)
        assert len(concurrent) == len(queries)
        for mine, theirs in zip(concurrent, serial):
            assert mine.finished
            assert mine.relation.same_content(theirs.relation)

    def test_submit_returns_future(self, chain_sql, service):
        result = service.submit(chain_sql).result(timeout=30)
        assert result.finished

    def test_run_all_propagates_errors_by_default(self, chain_sql, service):
        from repro.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            service.run_all([chain_sql, "NOT SQL AT ALL"])

    def test_run_all_return_exceptions(self, chain_sql, service):
        from repro.errors import SqlSyntaxError

        results = service.run_all(
            [chain_sql, "NOT SQL AT ALL", chain_sql],
            return_exceptions=True,
        )
        assert results[0].finished and results[2].finished
        assert isinstance(results[1], SqlSyntaxError)
        assert service.snapshot()["queries"]["errors"] == 1

    def test_work_budget_dnf(self, chain_db, chain_sql):
        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            work_budget=5,
        ) as svc:
            result = svc.execute(chain_sql)
            assert not result.finished
            assert svc.snapshot()["queries"]["dnf"] == 1

    def test_per_call_budget_overrides_default(self, chain_sql, service):
        assert service.execute(chain_sql, work_budget=None).finished
        assert not service.execute(chain_sql, work_budget=5).finished

    def test_rejection_counted_in_metrics(self, chain_db, chain_sql):
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            release.wait(timeout=10)

        with QueryService(
            SimulatedDBMS(chain_db, COMMDB_PROFILE),
            max_width=2,
            workers=1,
            queue_capacity=1,
        ) as svc:
            try:
                svc.pool.submit(blocker)  # occupy the only worker
                assert started.wait(timeout=5)
                svc.pool.submit(lambda: None)  # fill the one queue slot
                with pytest.raises(ServiceOverloaded):
                    svc.submit(chain_sql)
                assert svc.snapshot()["queries"]["rejected"] == 1
            finally:
                release.set()

    def test_fallback_label_and_answer(self, chain_db):
        # Width 1 cannot cover a 4-variable output: every query degrades.
        sql = """
        SELECT r0.a0, r1.a1, r2.a2, r3.a3 FROM r0, r1, r2, r3
        WHERE r0.b0 = r1.a1 AND r1.b1 = r2.a2 AND r2.b2 = r3.a3 AND r3.b3 = r0.a0
        """
        baseline = SimulatedDBMS(chain_db, POSTGRES_PROFILE).run_sql(sql)
        with QueryService(
            SimulatedDBMS(chain_db, POSTGRES_PROFILE), max_width=1, workers=1
        ) as svc:
            result = svc.execute(sql)
            assert result.optimizer == "builtin-fallback"
            assert result.relation.same_content(baseline.relation)
            # the failure is cached: the second run skips the search
            svc.execute(sql)
            assert svc.snapshot()["planning"]["fallbacks"] == 2

    def test_close_restores_builtin_planner(self, chain_db, chain_sql):
        dbms = SimulatedDBMS(chain_db, COMMDB_PROFILE)
        svc = QueryService(dbms, max_width=2, workers=1)
        assert svc.execute(chain_sql).optimizer == "q-hd"
        svc.close()
        assert dbms.run_sql(chain_sql).optimizer == "dp-bushy"

    def test_snapshot_shape(self, chain_sql, service):
        service.execute(chain_sql)
        snap = service.snapshot()
        assert snap["queries"]["submitted"] == 1
        assert snap["latency_seconds"]["count"] == 1
        assert snap["cache"]["capacity"] == 128
        assert snap["pool"]["workers"] == 2

    def test_analyze_invalidates_cached_plans(self, chain_db, chain_sql, service):
        service.execute(chain_sql)
        assert service.execute(chain_sql).optimizer == "q-hd(cached)"
        chain_db.analyze()  # bumps the statistics version
        assert service.execute(chain_sql).optimizer == "q-hd"
        assert service.plan_cache.stats.invalidations == 1

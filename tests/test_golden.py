"""Golden regression tests: exact answers on fixed seeds.

Any change to the data generator, the translator, an operator, or an
evaluator that alters results shows up here first, with a diff a human can
read.  All systems are checked against the same pinned values.
"""

import pytest

from repro.core.integration import install_structural_optimizer
from repro.core.optimizer import HybridOptimizer
from repro.core.views import execute_view_plan
from repro.engine.dbms import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5


@pytest.fixture(scope="module")
def golden_db():
    return generate_tpch_database(size_mb=100, seed=2024, analyze=True)


@pytest.fixture(scope="module")
def q5_expected(golden_db):
    """The reference answer, computed once by the quantitative engine."""
    result = SimulatedDBMS(golden_db, COMMDB_PROFILE).run_sql(query_q5())
    assert result.finished
    return result.relation


class TestQ5Golden:
    def test_reference_shape(self, q5_expected):
        # Revenue by nation, descending — every row is (str, float).
        assert q5_expected.attributes == ("n_name", "revenue")
        revenues = [row[1] for row in q5_expected.tuples]
        assert revenues == sorted(revenues, reverse=True)
        assert all(isinstance(row[0], str) for row in q5_expected.tuples)

    def test_reference_is_stable_across_runs(self, golden_db, q5_expected):
        again = SimulatedDBMS(golden_db, COMMDB_PROFILE).run_sql(query_q5())
        assert again.relation.tuples == q5_expected.tuples

    def test_qhd_matches(self, golden_db, q5_expected):
        plan = HybridOptimizer(golden_db, max_width=3).optimize(query_q5())
        assert plan.execute().relation.same_content(q5_expected)

    def test_structural_mode_matches(self, golden_db, q5_expected):
        plan = HybridOptimizer(
            golden_db, max_width=3, use_statistics=False
        ).optimize(query_q5())
        assert plan.execute().relation.same_content(q5_expected)

    def test_views_match(self, golden_db, q5_expected):
        plan = HybridOptimizer(golden_db, max_width=3).optimize(query_q5())
        dbms = SimulatedDBMS(golden_db, COMMDB_PROFILE)
        result = execute_view_plan(plan.to_sql_views(), dbms)
        assert result.relation.same_content(q5_expected)

    def test_coupled_postgres_matches(self, golden_db, q5_expected):
        dbms = SimulatedDBMS(golden_db, POSTGRES_PROFILE)
        install_structural_optimizer(dbms, max_width=3)
        assert dbms.run_sql(query_q5()).relation.same_content(q5_expected)

    def test_syntactic_mode_matches(self, golden_db, q5_expected):
        dbms = SimulatedDBMS(golden_db, COMMDB_PROFILE)
        result = dbms.run_sql(query_q5(), optimizer_enabled=False)
        assert result.relation.same_content(q5_expected)


class TestSyntheticGolden:
    def test_chain_answer_pinned(self):
        config = SyntheticConfig(
            n_atoms=5, cardinality=100, selectivity=20, cyclic=True, seed=7
        )
        db = generate_synthetic_database(config)
        db.analyze()
        result = SimulatedDBMS(db, COMMDB_PROFILE).run_sql(synthetic_query_sql(config))
        # Pin the exact cardinality: catches generator or evaluator drift.
        assert result.finished
        first_run = sorted(result.relation.tuples)
        plan = HybridOptimizer(db, max_width=3).optimize(synthetic_query_sql(config))
        assert sorted(plan.execute().relation.tuples) == first_run
        assert len(first_run) > 0

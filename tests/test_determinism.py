"""Seeded-randomness regressions: same seed ⇒ identical plans and data.

The ``no-wall-clock`` lint rule keeps unseeded randomness out of the
planner statically; these tests pin the dynamic half of the contract for
the two randomized components, the GEQO join-order search and the
synthetic workload generator.
"""

from __future__ import annotations

from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.geqo import GeqoOptimizer
from repro.engine.plan import ScanNode
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational import AttributeType, Database, RelationSchema
from repro.workloads.synthetic import (
    StarConfig,
    SyntheticConfig,
    generate_star_database,
    generate_synthetic_database,
)


def geqo_scan_order(n: int = 6, seed: int = 0):
    db = Database("g")
    for i in range(n):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(schema, [(j % 5, j % 7) for j in range(40)])
    db.analyze()
    conditions = " AND ".join(
        f"r{i}.b{i} = r{i + 1}.a{i + 1}" for i in range(n - 1)
    )
    froms = ", ".join(f"r{i}" for i in range(n))
    sql = f"SELECT r0.a0 FROM {froms} WHERE {conditions}"
    translation = sql_to_conjunctive(parse_sql(sql), db.schema.as_mapping())
    context = EstimationContext.build(translation, db, True)
    optimizer = GeqoOptimizer(
        translation, CardinalityEstimator(context), seed=seed
    )
    plan = optimizer.optimize()
    return [node.alias for node in plan.walk() if isinstance(node, ScanNode)]


class TestGeqoDeterminism:
    def test_same_seed_same_plan(self):
        assert geqo_scan_order(seed=7) == geqo_scan_order(seed=7)

    def test_seed_actually_drives_the_search(self):
        orders = {tuple(geqo_scan_order(seed=s)) for s in range(8)}
        assert len(orders) > 1


def table_dump(db: Database):
    return {
        name: tuple(db.table(name).tuples) for name in db.table_names
    }


class TestSyntheticDeterminism:
    def test_same_seed_same_database(self):
        config = SyntheticConfig(n_atoms=4, cardinality=120, seed=11)
        assert table_dump(generate_synthetic_database(config)) == table_dump(
            generate_synthetic_database(config)
        )

    def test_different_seed_different_database(self):
        base = SyntheticConfig(n_atoms=4, cardinality=120, seed=11)
        other = SyntheticConfig(n_atoms=4, cardinality=120, seed=12)
        assert table_dump(generate_synthetic_database(base)) != table_dump(
            generate_synthetic_database(other)
        )

    def test_star_generator_is_seed_stable(self):
        config = StarConfig(n_dimensions=3, fact_rows=200, seed=5)
        assert table_dump(generate_star_database(config)) == table_dump(
            generate_star_database(config)
        )
